#include "core/molecule.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace molcache {
namespace {

Molecule
makeMol()
{
    return Molecule(MoleculeId{5}, TileId{1}, /*numLines=*/128,
                    /*lineSize=*/64);
}

TEST(Molecule, StartsFree)
{
    const Molecule m = makeMol();
    EXPECT_TRUE(m.isFree());
    EXPECT_EQ(m.configuredAsid(), kInvalidAsid);
    EXPECT_FALSE(m.sharedBit());
    EXPECT_EQ(m.validLines(), 0u);
    EXPECT_EQ(m.id(), MoleculeId{5});
    EXPECT_EQ(m.tile(), TileId{1});
}

TEST(Molecule, AsidGate)
{
    Molecule m = makeMol();
    m.assignTo(Asid{7});
    EXPECT_TRUE(m.admits(Asid{7}));
    EXPECT_FALSE(m.admits(Asid{8}));
    m.setSharedBit(true);
    EXPECT_TRUE(m.admits(Asid{8})); // shared bit overrides the comparator
}

TEST(Molecule, FillThenLookup)
{
    Molecule m = makeMol();
    m.assignTo(Asid{1});
    EXPECT_FALSE(m.lookup(0x4000));
    EXPECT_FALSE(m.fill(0x4000, false).has_value()); // cold fill
    EXPECT_TRUE(m.lookup(0x4000));
    EXPECT_TRUE(m.lookup(0x403f)); // same 64B line
    EXPECT_FALSE(m.lookup(0x4040)); // next line
    EXPECT_EQ(m.validLines(), 1u);
}

TEST(Molecule, DirectMappedConflict)
{
    Molecule m = makeMol();
    m.assignTo(Asid{1});
    const u64 span = 128 * 64; // lines * lineSize
    m.fill(0x0, false);
    const auto ev = m.fill(span, false); // same index, different tag
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->addr, 0x0u);
    EXPECT_FALSE(ev->dirty);
    EXPECT_FALSE(m.lookup(0x0));
    EXPECT_TRUE(m.lookup(span));
    EXPECT_EQ(m.validLines(), 1u); // replaced, not added
}

TEST(Molecule, DirtyEvictionReported)
{
    Molecule m = makeMol();
    m.assignTo(Asid{1});
    const u64 span = 128 * 64;
    m.fill(0x40, true); // dirty
    const auto ev = m.fill(0x40 + span, false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty);
    EXPECT_EQ(ev->addr, 0x40u);
}

TEST(Molecule, RefillMergesDirtyBit)
{
    Molecule m = makeMol();
    m.assignTo(Asid{1});
    m.fill(0x80, true);
    EXPECT_FALSE(m.fill(0x80, false).has_value()); // refill, no eviction
    const u64 span = 128 * 64;
    const auto ev = m.fill(0x80 + span, false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty); // dirty bit survived the clean refill
}

TEST(Molecule, MarkDirty)
{
    Molecule m = makeMol();
    m.assignTo(Asid{1});
    m.fill(0xc0, false);
    m.markDirty(0xc0);
    const u64 span = 128 * 64;
    EXPECT_TRUE(m.fill(0xc0 + span, false)->dirty);
}

TEST(Molecule, InvalidateReportsDirty)
{
    Molecule m = makeMol();
    m.assignTo(Asid{1});
    m.fill(0x100, true);
    EXPECT_FALSE(m.invalidate(0x9999999)); // not resident
    EXPECT_TRUE(m.invalidate(0x100));      // resident + dirty
    EXPECT_FALSE(m.lookup(0x100));
    EXPECT_EQ(m.validLines(), 0u);
    m.fill(0x100, false);
    EXPECT_FALSE(m.invalidate(0x100)); // resident but clean
}

TEST(Molecule, AssignInvalidatesContents)
{
    Molecule m = makeMol();
    m.assignTo(Asid{1});
    m.fill(0x200, false);
    m.assignTo(Asid{2}); // region handover must not leak lines
    EXPECT_FALSE(m.lookup(0x200));
    EXPECT_EQ(m.validLines(), 0u);
    EXPECT_EQ(m.configuredAsid(), Asid{2});
}

TEST(Molecule, ReleaseCountsDirtyLines)
{
    Molecule m = makeMol();
    m.assignTo(Asid{1});
    m.fill(0x0, true);
    m.fill(0x40, false);
    m.fill(0x80, true);
    EXPECT_EQ(m.release(), 2u);
    EXPECT_TRUE(m.isFree());
    EXPECT_EQ(m.validLines(), 0u);
}

TEST(Molecule, MissCounter)
{
    Molecule m = makeMol();
    m.assignTo(Asid{1});
    m.noteMiss();
    m.noteMiss();
    EXPECT_EQ(m.missCount(), 2u);
    m.resetMissCount();
    EXPECT_EQ(m.missCount(), 0u);
}

TEST(Molecule, ResidentLinesRoundTrip)
{
    Molecule m = makeMol();
    m.assignTo(Asid{1});
    const std::vector<Addr> filled = {0x0, 0x40, 0x1000, 0x1fc0};
    for (const Addr a : filled)
        m.fill(a, false);
    auto resident = m.residentLines();
    std::sort(resident.begin(), resident.end());
    EXPECT_EQ(resident, filled);
}

TEST(Molecule, ResidentLinesReconstructHighAddresses)
{
    Molecule m = makeMol();
    m.assignTo(Asid{1});
    const Addr high = (static_cast<Addr>(3) << 34) + 5 * 64;
    m.fill(high, false);
    const auto resident = m.residentLines();
    ASSERT_EQ(resident.size(), 1u);
    EXPECT_EQ(resident[0], high);
}

} // namespace
} // namespace molcache
