#include "core/ulmo.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

TEST(Ulmo, Construction)
{
    CoherenceDirectory dir(2);
    Ulmo ulmo(ClusterId{1}, {TileId{4}, TileId{5}, TileId{6}, TileId{7}},
              dir);
    EXPECT_EQ(ulmo.cluster(), ClusterId{1});
    EXPECT_EQ(ulmo.tiles().size(), 4u);
    EXPECT_TRUE(ulmo.managesTile(TileId{4}));
    EXPECT_TRUE(ulmo.managesTile(TileId{7}));
    EXPECT_FALSE(ulmo.managesTile(TileId{3}));
    EXPECT_FALSE(ulmo.managesTile(TileId{8}));
}

TEST(Ulmo, SharedDirectoryReference)
{
    CoherenceDirectory dir(2);
    Ulmo a(ClusterId{0}, {TileId{0}, TileId{1}}, dir);
    Ulmo b(ClusterId{1}, {TileId{2}, TileId{3}}, dir);
    // Both Ulmos front the same directory: a fill seen through one is
    // visible through the other.
    a.directory().noteFill(LineAddr{0x1000}, ClusterId{0}, false);
    EXPECT_TRUE(b.directory().isHeld(LineAddr{0x1000}, ClusterId{0}));
    EXPECT_EQ(&a.directory(), &b.directory());
}

TEST(Ulmo, StatCounters)
{
    CoherenceDirectory dir(1);
    Ulmo ulmo(ClusterId{0}, {TileId{0}}, dir);
    ulmo.noteTileMiss();
    ulmo.noteTileMiss();
    ulmo.noteRemoteProbes(5);
    ulmo.noteRemoteProbes(3);
    ulmo.noteRemoteHit();
    ulmo.noteDonation();
    ulmo.noteInvalidation();
    EXPECT_EQ(ulmo.tileMisses(), 2u);
    EXPECT_EQ(ulmo.remoteProbes(), 8u);
    EXPECT_EQ(ulmo.remoteHits(), 1u);
    EXPECT_EQ(ulmo.donations(), 1u);
    EXPECT_EQ(ulmo.invalidationsApplied(), 1u);
}

TEST(UlmoDeath, NoTiles)
{
    CoherenceDirectory dir(1);
    EXPECT_DEATH(Ulmo(ClusterId{0}, {}, dir), "no tiles");
}

} // namespace
} // namespace molcache
