#include "core/ulmo.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

TEST(Ulmo, Construction)
{
    CoherenceDirectory dir(2);
    Ulmo ulmo(1, {4, 5, 6, 7}, dir);
    EXPECT_EQ(ulmo.cluster(), 1u);
    EXPECT_EQ(ulmo.tiles().size(), 4u);
    EXPECT_TRUE(ulmo.managesTile(4));
    EXPECT_TRUE(ulmo.managesTile(7));
    EXPECT_FALSE(ulmo.managesTile(3));
    EXPECT_FALSE(ulmo.managesTile(8));
}

TEST(Ulmo, SharedDirectoryReference)
{
    CoherenceDirectory dir(2);
    Ulmo a(0, {0, 1}, dir);
    Ulmo b(1, {2, 3}, dir);
    // Both Ulmos front the same directory: a fill seen through one is
    // visible through the other.
    a.directory().noteFill(0x1000, 0, false);
    EXPECT_TRUE(b.directory().isHeld(0x1000, 0));
    EXPECT_EQ(&a.directory(), &b.directory());
}

TEST(Ulmo, StatCounters)
{
    CoherenceDirectory dir(1);
    Ulmo ulmo(0, {0}, dir);
    ulmo.noteTileMiss();
    ulmo.noteTileMiss();
    ulmo.noteRemoteProbes(5);
    ulmo.noteRemoteProbes(3);
    ulmo.noteRemoteHit();
    ulmo.noteDonation();
    ulmo.noteInvalidation();
    EXPECT_EQ(ulmo.tileMisses(), 2u);
    EXPECT_EQ(ulmo.remoteProbes(), 8u);
    EXPECT_EQ(ulmo.remoteHits(), 1u);
    EXPECT_EQ(ulmo.donations(), 1u);
    EXPECT_EQ(ulmo.invalidationsApplied(), 1u);
}

TEST(UlmoDeath, NoTiles)
{
    CoherenceDirectory dir(1);
    EXPECT_DEATH(Ulmo(0, {}, dir), "no tiles");
}

} // namespace
} // namespace molcache
