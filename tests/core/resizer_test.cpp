#include "core/resizer.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace molcache {
namespace {

/** Broker over an infinite (or bounded) molecule supply for unit tests. */
class FakeBroker final : public MoleculeBroker
{
  public:
    explicit FakeBroker(u32 available = 1000000)
        : available_(available)
    {
    }

    u32
    grant(Region &region, u32 count) override
    {
        const u32 got = std::min(count, available_);
        available_ -= got;
        for (u32 i = 0; i < got; ++i) {
            region.addMolecule(next_, TileId{0}, false);
            ++next_;
        }
        return got;
    }

    u32
    withdraw(Region &region, u32 count) override
    {
        u32 got = 0;
        while (got < count && region.size() > 1) {
            region.removeMolecule(region.pickWithdrawal());
            ++available_;
            ++got;
        }
        return got;
    }

  private:
    u32 available_;
    MoleculeId next_{100};
};

MolecularCacheParams
params()
{
    MolecularCacheParams p;
    p.maxAllocationChunk = 8;
    p.minIntervalSample = 100;
    return p;
}

Region
makeRegion(u32 molecules)
{
    Region r(Asid{1}, PlacementPolicy::Random, 1, TileId{0},
             ClusterId{0}, 8_KiB);
    for (u32 m = 0; m < molecules; ++m)
        r.addMolecule(MoleculeId{m}, TileId{0}, true);
    r.maxAllocation = 8;
    r.lastGrant = molecules;
    return r;
}

/** Drive one interval's worth of synthetic statistics into the region. */
void
feedInterval(Region &r, u32 accesses, u32 misses, u32 replacements)
{
    for (u32 i = 0; i < accesses; ++i)
        r.noteAccess(i >= misses); // first `misses` accesses miss
    for (u32 i = 0; i < replacements; ++i)
        r.noteReplacement(r.rows()[0][i % r.rows()[0].size()], 0);
}

/** First evaluation only observes; prime it so decisions flow. */
void
primeRegion(Region &r, const Resizer &resizer, FakeBroker &broker,
            double mr = 0.3)
{
    feedInterval(r, 1000, static_cast<u32>(mr * 1000),
                 static_cast<u32>(mr * 1000));
    resizer.resizeRegion(r, 0.1, broker);
}

TEST(Resizer, IdleRegionUntouched)
{
    const Resizer resizer(params());
    FakeBroker broker;
    Region r = makeRegion(4);
    const RegionResize out = resizer.resizeRegion(r, 0.1, broker);
    EXPECT_FALSE(out.evaluated);
    EXPECT_EQ(out.delta, 0);
    EXPECT_EQ(r.size(), 4u);
}

TEST(Resizer, BelowMinimumSampleAccumulates)
{
    const Resizer resizer(params());
    FakeBroker broker;
    Region r = makeRegion(4);
    feedInterval(r, 50, 25, 25); // below minIntervalSample=100
    const RegionResize out = resizer.resizeRegion(r, 0.1, broker);
    EXPECT_FALSE(out.evaluated);
    EXPECT_EQ(r.intervalAccesses(), 50u); // interval NOT closed
}

TEST(Resizer, FirstEvaluationOnlyObserves)
{
    const Resizer resizer(params());
    FakeBroker broker;
    Region r = makeRegion(4);
    feedInterval(r, 1000, 900, 900); // wildly thrashing, but cold
    const RegionResize out = resizer.resizeRegion(r, 0.1, broker);
    EXPECT_TRUE(out.evaluated);
    EXPECT_EQ(out.delta, 0);
    EXPECT_EQ(r.size(), 4u);
    EXPECT_NEAR(r.lastMissRate, 0.9, 1e-9);
    EXPECT_EQ(r.intervalAccesses(), 0u); // interval closed
}

TEST(Resizer, GrowsWhileImproving)
{
    const Resizer resizer(params());
    FakeBroker broker;
    Region r = makeRegion(4);
    primeRegion(r, resizer, broker, 0.40);
    // mr 0.3 < 0.4*(1-eps): improving, above goal 0.1 => grow toward
    // size*mr/goal = 4*3 = 12, chunk-capped at 8.
    feedInterval(r, 1000, 300, 300);
    const RegionResize out = resizer.resizeRegion(r, 0.1, broker);
    EXPECT_EQ(out.delta, 8);
    EXPECT_EQ(r.size(), 12u);
}

TEST(Resizer, HoldsWhenNotImproving)
{
    const Resizer resizer(params());
    FakeBroker broker;
    Region r = makeRegion(4);
    primeRegion(r, resizer, broker, 0.30);
    feedInterval(r, 1000, 300, 300); // same mr: no improvement
    const RegionResize out = resizer.resizeRegion(r, 0.1, broker);
    EXPECT_EQ(out.delta, 0);
    EXPECT_EQ(r.size(), 4u);
}

TEST(Resizer, GrowWhenNotImprovingFlag)
{
    MolecularCacheParams p = params();
    p.growWhenNotImproving = true;
    const Resizer resizer(p);
    FakeBroker broker;
    Region r = makeRegion(4);
    primeRegion(r, resizer, broker, 0.30);
    feedInterval(r, 1000, 300, 300);
    EXPECT_GT(resizer.resizeRegion(r, 0.1, broker).delta, 0);
}

TEST(Resizer, WithdrawsWhenUnderGoal)
{
    const Resizer resizer(params());
    FakeBroker broker;
    Region r = makeRegion(16);
    primeRegion(r, resizer, broker, 0.30);
    // mr 0.025 < goal 0.1: withdraw sqrt(16*0.025/0.1) = 2.
    feedInterval(r, 1000, 25, 25);
    const RegionResize out = resizer.resizeRegion(r, 0.1, broker);
    EXPECT_EQ(out.delta, -2);
    EXPECT_EQ(r.size(), 14u);
}

TEST(Resizer, WithdrawNeverEmptiesRegion)
{
    const Resizer resizer(params());
    FakeBroker broker;
    Region r = makeRegion(2);
    primeRegion(r, resizer, broker, 0.30);
    feedInterval(r, 1000, 0, 0); // perfect hit rate: maximal withdrawal
    resizer.resizeRegion(r, 0.1, broker);
    EXPECT_GE(r.size(), 1u);
}

TEST(Resizer, ThrashNeedsTwoConsecutiveIntervals)
{
    const Resizer resizer(params());
    FakeBroker broker;
    Region r = makeRegion(32);
    primeRegion(r, resizer, broker, 0.30);
    // One thrashing interval: streak 1, no cap yet (falls to hold).
    feedInterval(r, 1000, 700, 700);
    resizer.resizeRegion(r, 0.1, broker);
    EXPECT_EQ(r.size(), 32u);
    // Second thrashing interval: capped down to maxAllocation.
    feedInterval(r, 1000, 700, 700);
    const RegionResize out = resizer.resizeRegion(r, 0.1, broker);
    EXPECT_LT(out.delta, 0);
    EXPECT_EQ(r.size(), r.maxAllocation);
}

TEST(Resizer, ThrashStreakResetByGoodInterval)
{
    const Resizer resizer(params());
    FakeBroker broker;
    Region r = makeRegion(32);
    primeRegion(r, resizer, broker, 0.30);
    feedInterval(r, 1000, 700, 700); // streak 1
    resizer.resizeRegion(r, 0.1, broker);
    feedInterval(r, 1000, 200, 200); // healthy: streak resets
    resizer.resizeRegion(r, 0.1, broker);
    feedInterval(r, 1000, 700, 700); // streak 1 again: still no cap
    resizer.resizeRegion(r, 0.1, broker);
    EXPECT_GE(r.size(), 32u);
}

TEST(Resizer, ColdFillsDoNotCountAsThrash)
{
    const Resizer resizer(params());
    FakeBroker broker;
    Region r = makeRegion(32);
    primeRegion(r, resizer, broker, 0.30);
    // High miss rate but almost all compulsory (no replacements).
    feedInterval(r, 1000, 700, 10);
    resizer.resizeRegion(r, 0.1, broker);
    feedInterval(r, 1000, 700, 10);
    resizer.resizeRegion(r, 0.1, broker);
    EXPECT_GE(r.size(), 32u) << "cold-miss compensation failed";
}

TEST(Resizer, PeriodAdaptation)
{
    const Resizer resizer(params());
    // Under goal: doubles. Over: drops to 10%. Clamped at both ends.
    EXPECT_EQ(resizer.adaptPeriod(25000, 0.05, 0.1), 50000u);
    EXPECT_EQ(resizer.adaptPeriod(25000, 0.5, 0.1), 2500u);
    EXPECT_EQ(resizer.adaptPeriod(2500, 0.5, 0.1),
              params().minResizePeriod);
    EXPECT_EQ(resizer.adaptPeriod(700000, 0.01, 0.1),
              params().maxResizePeriod);
}

TEST(Resizer, PeriodAdaptationEdgeCases)
{
    const Resizer resizer(params());
    // goal = 0: no miss rate can be under it, so the period always takes
    // the over-goal branch (shrinks) rather than dividing by zero.
    EXPECT_EQ(resizer.adaptPeriod(25000, 0.0, 0.0), 2500u);
    EXPECT_EQ(resizer.adaptPeriod(25000, 1.0, 0.0), 2500u);
    // Extreme miss rates behave like any other side of the goal.
    EXPECT_EQ(resizer.adaptPeriod(25000, 0.0, 0.1), 50000u);
    EXPECT_EQ(resizer.adaptPeriod(25000, 1.0, 0.1), 2500u);
    // Exactly at the goal counts as not-under: the loop speeds up.
    EXPECT_EQ(resizer.adaptPeriod(25000, 0.1, 0.1), 2500u);
    // Landing exactly on a clamp boundary is a fixed point, not an
    // overshoot: 400000*2 == maxResizePeriod, 25000*0.1 == min.
    EXPECT_EQ(resizer.adaptPeriod(400000, 0.05, 0.1),
              params().maxResizePeriod);
    EXPECT_EQ(resizer.adaptPeriod(25000, 0.5, 0.1),
              params().minResizePeriod);
}

TEST(Resizer, PeriodAdaptationPinnedClamp)
{
    // minResizePeriod == maxResizePeriod pins the period entirely.
    MolecularCacheParams p = params();
    p.minResizePeriod = 10000;
    p.maxResizePeriod = 10000;
    const Resizer resizer(p);
    EXPECT_EQ(resizer.adaptPeriod(10000, 0.05, 0.1), 10000u);
    EXPECT_EQ(resizer.adaptPeriod(10000, 0.5, 0.1), 10000u);
}

TEST(Resizer, CountersAccumulate)
{
    const Resizer resizer(params());
    FakeBroker broker;
    Region r = makeRegion(4);
    primeRegion(r, resizer, broker, 0.40);
    feedInterval(r, 1000, 300, 300);
    resizer.resizeRegion(r, 0.1, broker);
    EXPECT_GE(resizer.runs(), 2u);
    EXPECT_GE(resizer.granted(), 8u);
}

} // namespace
} // namespace molcache
