#include "core/region.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/units.hpp"

namespace molcache {
namespace {

Region
randyRegion(u32 initialRowMax = 4)
{
    return Region(Asid{1}, PlacementPolicy::Randy, /*lineMultiple=*/1,
                  TileId{0}, ClusterId{0},
                  /*moleculeSize=*/8_KiB, initialRowMax);
}

Region
randomRegion()
{
    return Region(Asid{1}, PlacementPolicy::Random, 1, TileId{0},
                  ClusterId{0}, 8_KiB);
}

TEST(Region, InitialRowLayout)
{
    Region r = randyRegion(4);
    for (u32 m = 0; m < 8; ++m)
        r.addMolecule(MoleculeId{m}, TileId{0}, /*initial=*/true);
    EXPECT_EQ(r.size(), 8u);
    EXPECT_EQ(r.rowMax(), 4u); // capped at initialRowMax
    for (const auto &row : r.rows())
        EXPECT_EQ(row.size(), 2u); // dealt round-robin
}

TEST(Region, RandomIsSingleRow)
{
    Region r = randomRegion();
    for (u32 m = 0; m < 6; ++m)
        r.addMolecule(MoleculeId{m}, TileId{0}, true);
    EXPECT_EQ(r.rowMax(), 1u);
    EXPECT_EQ(r.rows()[0].size(), 6u);
}

TEST(Region, GrowthWidensHottestRow)
{
    Region r = randyRegion(2);
    r.addMolecule(MoleculeId{0}, TileId{0}, true); // row 0
    r.addMolecule(MoleculeId{1}, TileId{0}, true); // row 1
    // Heat up row 1.
    const Addr row1_addr = (8_KiB).value(); // (addr / 8KiB) % 2 == 1
    r.noteReplacement(MoleculeId{1}, row1_addr);
    r.noteReplacement(MoleculeId{1}, row1_addr);
    r.addMolecule(MoleculeId{2}, TileId{0}, /*initial=*/false);
    EXPECT_EQ(r.rows()[1].size(), 2u) << "hot row must receive the grant";
    EXPECT_EQ(r.rows()[0].size(), 1u);
}

TEST(Region, RowHashMatchesPaperFormula)
{
    Region r = randyRegion(4);
    for (u32 m = 0; m < 4; ++m)
        r.addMolecule(MoleculeId{m}, TileId{0}, true);
    for (const Addr a : {0ull, 8192ull, 16384ull, 24576ull, 32768ull})
        EXPECT_EQ(r.rowOf(a),
                  RowIndex{static_cast<u32>((a / (8_KiB).value()) % 4)});
}

TEST(Region, ChooseFillRespectsRow)
{
    Region r = randyRegion(2);
    r.addMolecule(MoleculeId{10}, TileId{0}, true); // row 0
    r.addMolecule(MoleculeId{20}, TileId{0}, true); // row 1
    r.addMolecule(MoleculeId{21}, TileId{0}, false); // widens a row (both cold: row 0)
    Pcg32 rng(1);
    // Addresses in row 1 must only be filled into row 1's molecule.
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(r.chooseFillMolecule((8_KiB).value(), rng), MoleculeId{20});
}

TEST(Region, ChooseFillRandomCoversRegion)
{
    Region r = randomRegion();
    for (u32 m = 0; m < 8; ++m)
        r.addMolecule(MoleculeId{m}, TileId{0}, true);
    Pcg32 rng(2);
    std::set<MoleculeId> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.chooseFillMolecule(0x1234000, rng));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Region, WithdrawalPrefersColdMolecule)
{
    Region r = randomRegion();
    r.addMolecule(MoleculeId{0}, TileId{0}, true);
    r.addMolecule(MoleculeId{1}, TileId{0}, true);
    r.noteReplacement(MoleculeId{0}, 0); // molecule 0 is hot
    EXPECT_EQ(r.pickWithdrawal(), MoleculeId{1});
}

TEST(Region, WithdrawalSparesWidth1RowsWhileWideExist)
{
    Region r = randyRegion(2);
    r.addMolecule(MoleculeId{0}, TileId{0}, true); // row 0
    r.addMolecule(MoleculeId{1}, TileId{0}, true); // row 1
    // Widen row 0 (make it hot so growth targets it).
    r.noteReplacement(MoleculeId{0}, 0);
    r.addMolecule(MoleculeId{2}, TileId{0}, false); // joins row 0
    // Row 1 is coldest but width 1; withdrawal must come from row 0.
    r.closeInterval();
    const MoleculeId victim = r.pickWithdrawal();
    EXPECT_TRUE(victim == MoleculeId{0} || victim == MoleculeId{2})
        << victim;
}

TEST(Region, RemoveMoleculeShrinksRows)
{
    Region r = randyRegion(2);
    r.addMolecule(MoleculeId{0}, TileId{0}, true);
    r.addMolecule(MoleculeId{1}, TileId{0}, true);
    EXPECT_EQ(r.rowMax(), 2u);
    r.removeMolecule(MoleculeId{1});
    EXPECT_EQ(r.rowMax(), 1u); // emptied row deleted
    EXPECT_EQ(r.size(), 1u);
    EXPECT_FALSE(r.contains(MoleculeId{1}));
    EXPECT_TRUE(r.contains(MoleculeId{0}));
}

TEST(Region, ByTileTracksPlacement)
{
    Region r = randomRegion();
    r.addMolecule(MoleculeId{0}, TileId{0}, true);
    r.addMolecule(MoleculeId{1}, TileId{2}, false);
    r.addMolecule(MoleculeId{2}, TileId{2}, false);
    ASSERT_EQ(r.byTile().size(), 2u);
    EXPECT_EQ(r.byTile().at(TileId{0}).size(), 1u);
    EXPECT_EQ(r.byTile().at(TileId{2}).size(), 2u);
    r.removeMolecule(MoleculeId{1});
    r.removeMolecule(MoleculeId{2});
    EXPECT_EQ(r.byTile().count(TileId{2}), 0u); // empty tile entry erased
}

TEST(Region, IntervalCounters)
{
    Region r = randomRegion();
    r.addMolecule(MoleculeId{0}, TileId{0}, true);
    r.noteAccess(true);
    r.noteAccess(false);
    r.noteAccess(false);
    r.noteReplacement(MoleculeId{0}, 0);
    EXPECT_EQ(r.intervalAccesses(), 3u);
    EXPECT_EQ(r.intervalMisses(), 2u);
    EXPECT_DOUBLE_EQ(r.intervalMissRate(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(r.intervalReplacementRate(), 1.0 / 3.0);
    r.closeInterval();
    EXPECT_EQ(r.intervalAccesses(), 0u);
    EXPECT_DOUBLE_EQ(r.intervalReplacementRate(), 0.0);
    // Lifetime counters survive the interval close.
    EXPECT_EQ(r.accesses(), 3u);
    EXPECT_EQ(r.hits(), 1u);
}

TEST(RegionDeath, DoubleAdd)
{
    Region r = randomRegion();
    r.addMolecule(MoleculeId{0}, TileId{0}, true);
    EXPECT_DEATH(r.addMolecule(MoleculeId{0}, TileId{0}, true),
                 "already in region");
}

TEST(RegionDeath, RemoveUnknown)
{
    Region r = randomRegion();
    EXPECT_DEATH(r.removeMolecule(MoleculeId{99}), "not in region");
}

TEST(RegionDeath, FillIntoEmptyRegion)
{
    Region r = randomRegion();
    Pcg32 rng(1);
    EXPECT_DEATH(r.chooseFillMolecule(0, rng), "empty region");
}

/** Property: Randy fill choices always come from the address's row. */
class RandyRowProperty : public ::testing::TestWithParam<u32>
{
};

TEST_P(RandyRowProperty, FillAlwaysInRow)
{
    const u32 rows = GetParam();
    Region r = randyRegion(rows);
    for (u32 m = 0; m < rows * 3; ++m)
        r.addMolecule(MoleculeId{m}, TileId{0}, true);
    Pcg32 rng(7);
    std::map<MoleculeId, u32> mol_row;
    for (u32 row = 0; row < r.rowMax(); ++row)
        for (const MoleculeId m : r.rows()[row])
            mol_row[m] = row;
    for (int i = 0; i < 1000; ++i) {
        const Addr addr = static_cast<Addr>(rng.below(1u << 20)) * 64;
        const MoleculeId pick = r.chooseFillMolecule(addr, rng);
        EXPECT_EQ(mol_row.at(pick), r.rowOf(addr).value());
    }
}

INSTANTIATE_TEST_SUITE_P(RowCounts, RandyRowProperty,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
} // namespace molcache
