#include "core/coherence.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

TEST(Coherence, ReadFillsShareFreely)
{
    CoherenceDirectory dir(4);
    EXPECT_TRUE(dir.noteFill(LineAddr{0x1000}, ClusterId{0}, false).empty());
    EXPECT_TRUE(dir.noteFill(LineAddr{0x1000}, ClusterId{1}, false).empty());
    EXPECT_TRUE(dir.noteFill(LineAddr{0x1000}, ClusterId{2}, false).empty());
    EXPECT_EQ(dir.holderCount(LineAddr{0x1000}), 3u);
    EXPECT_TRUE(dir.isHeld(LineAddr{0x1000}, ClusterId{0}));
    EXPECT_TRUE(dir.isHeld(LineAddr{0x1000}, ClusterId{2}));
    EXPECT_FALSE(dir.isHeld(LineAddr{0x1000}, ClusterId{3}));
    EXPECT_FALSE(dir.isModified(LineAddr{0x1000}));
}

TEST(Coherence, WriteInvalidatesOtherHolders)
{
    CoherenceDirectory dir(4);
    dir.noteFill(LineAddr{0x2000}, ClusterId{0}, false);
    dir.noteFill(LineAddr{0x2000}, ClusterId{1}, false);
    dir.noteFill(LineAddr{0x2000}, ClusterId{3}, false);
    const auto inv = dir.noteWrite(LineAddr{0x2000}, ClusterId{1});
    ASSERT_EQ(inv.size(), 2u);
    EXPECT_EQ(inv[0], ClusterId{0});
    EXPECT_EQ(inv[1], ClusterId{3});
    EXPECT_EQ(dir.holderCount(LineAddr{0x2000}), 1u);
    EXPECT_TRUE(dir.isHeld(LineAddr{0x2000}, ClusterId{1}));
    EXPECT_TRUE(dir.isModified(LineAddr{0x2000}));
    EXPECT_EQ(dir.stats().invalidationsSent, 2u);
}

TEST(Coherence, ExclusiveFillInvalidates)
{
    CoherenceDirectory dir(2);
    dir.noteFill(LineAddr{0x3000}, ClusterId{0}, false);
    const auto inv = dir.noteFill(LineAddr{0x3000}, ClusterId{1}, /*exclusive=*/true);
    ASSERT_EQ(inv.size(), 1u);
    EXPECT_EQ(inv[0], ClusterId{0});
    EXPECT_TRUE(dir.isModified(LineAddr{0x3000}));
    EXPECT_TRUE(dir.isHeld(LineAddr{0x3000}, ClusterId{1}));
    EXPECT_FALSE(dir.isHeld(LineAddr{0x3000}, ClusterId{0}));
}

TEST(Coherence, ReadOfModifiedLineDowngrades)
{
    CoherenceDirectory dir(2);
    dir.noteWrite(LineAddr{0x4000}, ClusterId{0});
    EXPECT_TRUE(dir.isModified(LineAddr{0x4000}));
    EXPECT_TRUE(dir.noteFill(LineAddr{0x4000}, ClusterId{1}, false).empty());
    EXPECT_FALSE(dir.isModified(LineAddr{0x4000})); // downgraded to shared
    EXPECT_EQ(dir.holderCount(LineAddr{0x4000}), 2u);
    EXPECT_EQ(dir.stats().downgrades, 1u);
}

TEST(Coherence, EvictionRemovesHolderAndEntry)
{
    CoherenceDirectory dir(2);
    dir.noteFill(LineAddr{0x5000}, ClusterId{0}, false);
    dir.noteFill(LineAddr{0x5000}, ClusterId{1}, false);
    EXPECT_EQ(dir.entries(), 1u);
    dir.noteEviction(LineAddr{0x5000}, ClusterId{0});
    EXPECT_FALSE(dir.isHeld(LineAddr{0x5000}, ClusterId{0}));
    EXPECT_TRUE(dir.isHeld(LineAddr{0x5000}, ClusterId{1}));
    dir.noteEviction(LineAddr{0x5000}, ClusterId{1});
    EXPECT_EQ(dir.entries(), 0u); // last holder gone: entry reclaimed
}

TEST(Coherence, EvictionOfUnknownLineIsNoop)
{
    CoherenceDirectory dir(2);
    dir.noteEviction(LineAddr{0xdead}, ClusterId{0});
    EXPECT_EQ(dir.entries(), 0u);
    EXPECT_EQ(dir.stats().evictions, 0u);
}

TEST(Coherence, ModifiedOwnerEvictionClearsState)
{
    CoherenceDirectory dir(2);
    dir.noteWrite(LineAddr{0x6000}, ClusterId{0});
    dir.noteEviction(LineAddr{0x6000}, ClusterId{0});
    EXPECT_FALSE(dir.isModified(LineAddr{0x6000}));
    EXPECT_EQ(dir.holderCount(LineAddr{0x6000}), 0u);
}

TEST(Coherence, WriteByOnlyHolderInvalidatesNothing)
{
    CoherenceDirectory dir(4);
    dir.noteFill(LineAddr{0x7000}, ClusterId{2}, false);
    EXPECT_TRUE(dir.noteWrite(LineAddr{0x7000}, ClusterId{2}).empty());
    EXPECT_EQ(dir.stats().invalidationsSent, 0u);
}

TEST(Coherence, DistinctLinesIndependent)
{
    CoherenceDirectory dir(2);
    dir.noteWrite(LineAddr{0x8000}, ClusterId{0});
    dir.noteWrite(LineAddr{0x8040}, ClusterId{1});
    EXPECT_TRUE(dir.isHeld(LineAddr{0x8000}, ClusterId{0}));
    EXPECT_TRUE(dir.isHeld(LineAddr{0x8040}, ClusterId{1}));
    EXPECT_FALSE(dir.isHeld(LineAddr{0x8000}, ClusterId{1}));
    EXPECT_EQ(dir.entries(), 2u);
}

TEST(Coherence, StatsAccumulate)
{
    CoherenceDirectory dir(2);
    dir.noteFill(LineAddr{0x1}, ClusterId{0}, false);
    dir.noteFill(LineAddr{0x1}, ClusterId{1}, false);
    dir.noteWrite(LineAddr{0x1}, ClusterId{0});
    dir.noteEviction(LineAddr{0x1}, ClusterId{0});
    EXPECT_EQ(dir.stats().fills, 2u);
    EXPECT_EQ(dir.stats().writes, 1u);
    EXPECT_EQ(dir.stats().evictions, 1u);
    EXPECT_EQ(dir.stats().invalidationsSent, 1u);
}

TEST(CoherenceDeath, TooManyClusters)
{
    EXPECT_DEATH(CoherenceDirectory dir(33), "1..32");
}

} // namespace
} // namespace molcache
