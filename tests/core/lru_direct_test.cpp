/**
 * @file
 * Tests for the LRU-Direct placement scheme (the paper's future-work
 * replacement, section 5).
 */

#include <gtest/gtest.h>

#include "core/molecular_cache.hpp"
#include "core/sim_access.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

MolecularCacheParams
lruParams()
{
    MolecularCacheParams p;
    p.moleculeSize = 8_KiB;
    p.moleculesPerTile = 8;
    p.tilesPerCluster = 2;
    p.clusters = 1;
    p.placement = PlacementPolicy::LruDirect;
    p.initialAllocation = InitialAllocation::Small;
    p.initialMolecules = 4;
    p.resizePeriod = 1u << 30; // fixed-capacity tests
    p.maxResizePeriod = 1u << 30;
    return p;
}

MemAccess
read(Addr addr)
{
    return {addr, Asid{0}, AccessType::Read};
}

TEST(LruDirect, ParseAndName)
{
    EXPECT_EQ(parsePlacementPolicy("lrudirect"), PlacementPolicy::LruDirect);
    EXPECT_EQ(placementPolicyName(PlacementPolicy::LruDirect),
              "lru-direct");
}

TEST(LruDirect, RegionUsesSingleRow)
{
    MolecularCache cache(lruParams());
    cache.registerApplication(Asid{0}, 0.1);
    EXPECT_EQ(cache.region(Asid{0}).rowMax(), 1u);
    EXPECT_EQ(cache.region(Asid{0}).size(), 4u);
}

TEST(LruDirect, BehavesAsLruAcrossMolecules)
{
    // 4 molecules => 4-way LRU per molecule index. Five conflicting
    // lines at the same index: the least recently used one is evicted.
    MolecularCache cache(lruParams());
    cache.registerApplication(Asid{0}, 0.1);
    const u64 span = (8_KiB).value(); // molecule span: same index, new tag
    for (u32 i = 0; i < 4; ++i)
        cache.access(read(i * span)); // fill all four ways
    cache.access(read(0));            // touch way A: now MRU
    cache.access(read(4 * span));     // fifth line evicts line at span
    // Verify the survivors first (hits don't evict), the victim last
    // (its re-fetch displaces another line).
    EXPECT_TRUE(cache.access(read(0)).hit);
    EXPECT_TRUE(cache.access(read(2 * span)).hit);
    EXPECT_TRUE(cache.access(read(3 * span)).hit);
    EXPECT_TRUE(cache.access(read(4 * span)).hit);
    EXPECT_FALSE(cache.access(read(span)).hit) << "LRU way must be gone";
}

TEST(LruDirect, FillsInvalidSlotsFirst)
{
    MolecularCache cache(lruParams());
    cache.registerApplication(Asid{0}, 0.1);
    const u64 span = (8_KiB).value();
    // Four conflicting lines into four molecules: all must coexist.
    for (u32 i = 0; i < 4; ++i)
        cache.access(read(i * span));
    for (u32 i = 0; i < 4; ++i)
        EXPECT_TRUE(cache.access(read(i * span)).hit) << "way " << i;
}

TEST(LruDirect, PinnedVictimScenario)
{
    // Recorded scenario pinning chooseLruDirectMolecule's victim order
    // (invalid slots first in region-view order, then the
    // least-recently-touched slot).  The hit/miss trace below was
    // derived by hand from the LRU state machine and recorded against
    // the implementation; any change to the victim walk — e.g. a probe
    // -order regression in the dense per-tile index — breaks it.
    MolecularCache cache(lruParams());
    cache.registerApplication(Asid{0}, 0.1);
    ASSERT_EQ(cache.region(Asid{0}).size(), 4u);
    const u64 span = (8_KiB).value(); // same slot, new tag per step

    const auto run = [&](std::initializer_list<u64> lines,
                         const char *expect) {
        std::string got;
        for (const u64 line : lines)
            got += cache.access(read(line * span)).hit ? 'H' : 'M';
        EXPECT_EQ(got, expect);
    };

    // Warmup: four conflicting lines take the four invalid slots in
    // region-view order.
    run({0, 1, 2, 3}, "MMMM");
    // Touches reorder recency; each miss evicts the LRU way.
    run({0, 2}, "HH");
    run({4, 1, 3, 0}, "MMMM"); // victims: line1, line3(way), line0, ...
    run({4}, "H");
    run({2, 1, 3, 0, 4, 2}, "MMMMMM"); // full thrash rotation
    // Fence off a region molecule: its resident line is lost, the
    // region shrinks to 3 ways, and the LRU walk skips the fenced way.
    ASSERT_TRUE(cache.region(Asid{0}).contains(MoleculeId{1}));
    ASSERT_TRUE(SimAccess{cache}.decommissionMolecule(MoleculeId{1}));
    run({0, 3, 2, 4, 0}, "MMHMM");
}

TEST(LruDirect, BeatsRandomOnLruFriendlyPattern)
{
    // Cyclic sweep exactly at capacity: LRU-Direct keeps everything
    // after warmup; Random placement keeps duplicating/evicting.
    auto run = [](PlacementPolicy placement) {
        MolecularCacheParams p = lruParams();
        p.placement = placement;
        MolecularCache cache(p);
        cache.registerApplication(Asid{0}, 0.1);
        // 4 molecules x 128 lines = 512 lines capacity; sweep 480 lines.
        u64 misses = 0;
        for (u32 pass = 0; pass < 6; ++pass)
            for (Addr a = 0; a < 480; ++a)
                misses += cache.access(read(a * 64)).hit ? 0 : 1;
        return misses;
    };
    EXPECT_LT(run(PlacementPolicy::LruDirect),
              run(PlacementPolicy::Random));
}

TEST(LruDirect, WorksWithResizing)
{
    MolecularCacheParams p = lruParams();
    p.resizePeriod = 2000;
    p.minResizePeriod = 500;
    p.maxResizePeriod = 20000;
    p.minIntervalSample = 500;
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.1);
    Pcg32 rng(1);
    for (u32 i = 0; i < 60000; ++i)
        cache.access(read(static_cast<Addr>(rng.below(1024)) * 64));
    EXPECT_GT(cache.resizeCycles(), 0u);
    EXPECT_GT(cache.region(Asid{0}).size(), 4u); // grew under pressure
}

} // namespace
} // namespace molcache
