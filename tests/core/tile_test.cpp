#include "core/tile.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

Tile
makeTile()
{
    return Tile(TileId{2}, ClusterId{0}, MoleculeId{64},
                /*numMolecules=*/8, /*linesPerMol=*/128, /*lineSize=*/64);
}

TEST(Tile, Construction)
{
    const Tile t = makeTile();
    EXPECT_EQ(t.id(), TileId{2});
    EXPECT_EQ(t.cluster(), ClusterId{0});
    EXPECT_EQ(t.numMolecules(), 8u);
    EXPECT_EQ(t.firstMolecule(), MoleculeId{64});
    EXPECT_EQ(t.freeCount(), 8u);
    EXPECT_TRUE(t.owns(MoleculeId{64}));
    EXPECT_TRUE(t.owns(MoleculeId{71}));
    EXPECT_FALSE(t.owns(MoleculeId{72}));
    EXPECT_FALSE(t.owns(MoleculeId{63}));
}

TEST(Tile, AllocateUntilExhausted)
{
    Tile t = makeTile();
    for (u32 i = 0; i < 8; ++i) {
        const MoleculeId id = t.allocate(Asid{5});
        ASSERT_NE(id, kInvalidMolecule);
        EXPECT_TRUE(t.owns(id));
        EXPECT_EQ(t.molecule(id).configuredAsid(), Asid{5});
    }
    EXPECT_EQ(t.freeCount(), 0u);
    EXPECT_EQ(t.allocate(Asid{5}), kInvalidMolecule);
}

TEST(Tile, ReleaseReturnsToPool)
{
    Tile t = makeTile();
    const MoleculeId id = t.allocate(Asid{3});
    EXPECT_EQ(t.freeCount(), 7u);
    t.molecule(id).fill(0x40, true);
    EXPECT_EQ(t.release(id), 1u); // one dirty line dropped
    EXPECT_EQ(t.freeCount(), 8u);
    EXPECT_TRUE(t.molecule(id).isFree());
}

TEST(Tile, ReleaseThenReallocate)
{
    Tile t = makeTile();
    const MoleculeId a = t.allocate(Asid{1});
    t.release(a);
    const MoleculeId b = t.allocate(Asid{2});
    EXPECT_EQ(a, b); // the freed molecule is reused first
    EXPECT_EQ(t.molecule(b).configuredAsid(), Asid{2});
}

TEST(Tile, PortAccounting)
{
    Tile t = makeTile();
    t.notePortAccess();
    t.notePortAccess();
    EXPECT_EQ(t.portAccesses(), 2u);
}

TEST(TileDeath, ForeignMolecule)
{
    Tile t = makeTile();
    EXPECT_DEATH(t.molecule(MoleculeId{5}), "not on tile");
}

TEST(TileDeath, DoubleRelease)
{
    Tile t = makeTile();
    const MoleculeId id = t.allocate(Asid{1});
    t.release(id);
    EXPECT_DEATH(t.release(id), "already-free");
}

} // namespace
} // namespace molcache
