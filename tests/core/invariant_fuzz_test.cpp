/**
 * @file
 * Randomized operation fuzzing of the molecular cache with invariant
 * checks after every step.  Catches bookkeeping drift (molecule pool
 * accounting, region/tile consistency, ASID gating) that directed unit
 * tests can miss.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/molecular_cache.hpp"
#include "core/sim_access.hpp"
#include "fault/invariant_checker.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

MolecularCacheParams
fuzzParams(u64 seed)
{
    MolecularCacheParams p;
    p.moleculeSize = 8_KiB;
    p.moleculesPerTile = 8;
    p.tilesPerCluster = 2;
    p.clusters = 2;
    p.initialAllocation = InitialAllocation::Small;
    p.initialMolecules = 2;
    p.resizePeriod = 500;
    p.minResizePeriod = 100;
    p.maxResizePeriod = 5000;
    p.minIntervalSample = 50;
    p.seed = seed;
    return p;
}

/** Pool + region + molecule-gate consistency. */
void
checkInvariants(const MolecularCache &cache,
                const std::set<Asid> &registered)
{
    const auto &params = cache.params();

    // 1. Every molecule is either free or owned by exactly one live
    //    region, and free counts add up.
    u32 held = 0;
    for (const Asid asid : registered) {
        const Region &r = cache.region(asid);
        held += r.size();
        // 2. Region bookkeeping: rows hold exactly size() molecules,
        //    each configured with the region's ASID, on the tile the
        //    region thinks it is on.
        u32 in_rows = 0;
        for (const auto &row : r.rows()) {
            ASSERT_FALSE(row.empty()) << "empty replacement-view row";
            in_rows += static_cast<u32>(row.size());
        }
        ASSERT_EQ(in_rows, r.size());
        for (const auto &[tile, mols] : r.byTile()) {
            for (const MoleculeId id : mols) {
                const Molecule &m = cache.molecule(id);
                ASSERT_EQ(m.configuredAsid(), asid);
                ASSERT_EQ(m.tile(), tile);
                ASSERT_TRUE(m.admits(asid));
            }
        }
        // 3. Regions stay inside their home cluster (Ulmo's domain).
        for (const auto &[tile, mols] : r.byTile()) {
            ASSERT_EQ(ClusterId{tile.value() / params.tilesPerCluster},
                      r.homeCluster());
        }
    }
    ASSERT_EQ(held + cache.freeMolecules() + cache.decommissionedMolecules(),
              params.totalMolecules());

    // 4. Stats sanity.
    const auto &g = cache.stats().global();
    ASSERT_EQ(g.hits + g.misses, g.accesses);

    // 5. The full cross-layer audit agrees.
    const auto rep = InvariantChecker::check(cache);
    ASSERT_TRUE(rep.ok()) << rep.violations.front();
}

class MolecularFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(MolecularFuzz, RandomOperationSequence)
{
    const u64 seed = GetParam();
    MolecularCache cache(fuzzParams(seed));
    Pcg32 rng(seed * 77 + 1);
    std::set<Asid> registered;

    for (u32 step = 0; step < 6000; ++step) {
        const u32 op = rng.below(100);
        if (op < 80) {
            // Access from a random registered app (auto-register if none).
            Asid asid{};
            if (registered.empty()) {
                asid = Asid{static_cast<u16>(rng.below(6))};
                registered.insert(asid);
            } else {
                auto it = registered.begin();
                std::advance(it, rng.below(
                                 static_cast<u32>(registered.size())));
                asid = *it;
            }
            const Addr addr =
                static_cast<Addr>(rng.below(4096)) * 64 +
                (static_cast<Addr>(asid.value()) << 34);
            const bool write = rng.chance(0.3);
            cache.access({addr, asid,
                          write ? AccessType::Write : AccessType::Read});
            registered.insert(asid); // auto-registration side effect
        } else if (op < 85) {
            // Register a new app if room.
            const Asid asid{static_cast<u16>(rng.below(6))};
            if (!registered.count(asid)) {
                cache.registerApplication(asid, 0.05 + 0.1 * rng.unitReal());
                registered.insert(asid);
            }
        } else if (op < 89) {
            // Unregister a random app.
            if (!registered.empty()) {
                auto it = registered.begin();
                std::advance(it, rng.below(
                                 static_cast<u32>(registered.size())));
                cache.unregisterApplication(*it);
                registered.erase(it);
            }
        } else if (op < 92) {
            // Migrate a random app.
            if (!registered.empty()) {
                auto it = registered.begin();
                std::advance(it, rng.below(
                                 static_cast<u32>(registered.size())));
                SimAccess{cache}.migrateApplication(
                    *it, ClusterId{rng.below(cache.params().clusters)},
                    rng.below(cache.params().tilesPerCluster));
            }
        } else if (op < 96) {
            // Corrupt a random line (latent until the slot is probed).
            SimAccess{cache}.injectTransientFlip(
                MoleculeId{rng.below(cache.params().totalMolecules())},
                rng.below(cache.params().linesPerMolecule()));
        } else {
            // Decommission a random molecule mid-run; cap the damage at a
            // quarter of the cache so regions always have room to recover.
            if (cache.decommissionedMolecules() <
                cache.params().totalMolecules() / 4) {
                SimAccess{cache}.decommissionMolecule(
                    MoleculeId{rng.below(cache.params().totalMolecules())});
            }
        }

        if (step % 250 == 0)
            checkInvariants(cache, registered);
    }
    checkInvariants(cache, registered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MolecularFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

/** The same fuzz under every placement policy. */
class PlacementFuzz : public ::testing::TestWithParam<PlacementPolicy>
{
};

TEST_P(PlacementFuzz, AccessStormKeepsInvariants)
{
    MolecularCacheParams p = fuzzParams(9);
    p.placement = GetParam();
    MolecularCache cache(p);
    // The audit hook panic()s the storm on the first inconsistency.
    InvariantChecker::attach(cache, 2500);
    Pcg32 rng(42);
    std::set<Asid> registered;
    for (u16 a = 0; a < 4; ++a) {
        cache.registerApplication(Asid{a}, 0.1);
        registered.insert(Asid{a});
    }
    for (u32 i = 0; i < 30000; ++i) {
        const Asid asid{static_cast<u16>(rng.below(4))};
        const Addr addr = static_cast<Addr>(rng.below(8192)) * 64 +
                          (static_cast<Addr>(asid.value()) << 34);
        cache.access({addr, asid,
                      rng.chance(0.25) ? AccessType::Write
                                       : AccessType::Read});
        if (i == 10000 || i == 20000) {
            // Mid-storm molecule losses; the audit keeps watching.
            SimAccess{cache}.decommissionMolecule(
                MoleculeId{rng.below(p.totalMolecules())});
        }
    }
    checkInvariants(cache, registered);
    EXPECT_GT(cache.resizeCycles(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PlacementFuzz,
                         ::testing::Values(PlacementPolicy::Random,
                                           PlacementPolicy::Randy,
                                           PlacementPolicy::LruDirect));

} // namespace
} // namespace molcache
