/**
 * @file
 * Tests for the non-static processor-tile mapping (paper section 3:
 * "The processor-tile assignment can be made non-static by allowing the
 * processor-tile mapping to be changed during a context-switch").
 */

#include <gtest/gtest.h>

#include "core/molecular_cache.hpp"
#include "core/sim_access.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

MolecularCacheParams
params()
{
    MolecularCacheParams p;
    p.moleculeSize = 8_KiB;
    p.moleculesPerTile = 8;
    p.tilesPerCluster = 2;
    p.clusters = 2;
    p.initialAllocation = InitialAllocation::Small;
    p.initialMolecules = 2;
    p.resizePeriod = 1u << 30; // keep capacity fixed
    p.maxResizePeriod = 1u << 30;
    return p;
}

MemAccess
read(Addr addr)
{
    return {addr, Asid{0}, AccessType::Read};
}

TEST(Migration, SameClusterKeepsContents)
{
    MolecularCache cache(params());
    cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, 1);
    cache.access(read(0x4000));
    EXPECT_TRUE(cache.access(read(0x4000)).hit);

    SimAccess{cache}.migrateApplication(Asid{0}, ClusterId{0}, 1); // tile 0 -> tile 1, same cluster
    EXPECT_EQ(cache.region(Asid{0}).homeTile(), TileId{1});
    EXPECT_EQ(cache.region(Asid{0}).homeCluster(), ClusterId{0});

    // The line is still cached — now in a remote molecule of the region,
    // served via Ulmo (lookup level 1).
    const AccessResult r = cache.access(read(0x4000));
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.level, 1u);
    EXPECT_GT(cache.ulmo(ClusterId{0}).remoteHits(), 0u);
}

TEST(Migration, CrossClusterRebuildsPartition)
{
    MolecularCache cache(params());
    cache.registerApplication(Asid{0}, 0.15, ClusterId{0}, 0, 2);
    cache.access(read(0x4000));
    const u32 size_before = cache.region(Asid{0}).size();

    SimAccess{cache}.migrateApplication(Asid{0}, ClusterId{1}, 0);
    EXPECT_EQ(cache.region(Asid{0}).homeCluster(), ClusterId{1});
    // Goal and line multiple survive the rebuild.
    EXPECT_DOUBLE_EQ(cache.region(Asid{0}).resizeGoal, 0.15);
    EXPECT_EQ(cache.region(Asid{0}).lineMultiple(), 2u);
    EXPECT_EQ(cache.region(Asid{0}).size(), size_before);
    // Contents do not: the cluster changed.
    EXPECT_FALSE(cache.access(read(0x4000)).hit);
    // Old cluster's molecules were returned to its pool.
    EXPECT_EQ(cache.freeMoleculesInCluster(ClusterId{0}),
              params().tilesPerCluster * params().moleculesPerTile);
}

TEST(Migration, CrossClusterWritesBackDirtyLines)
{
    MolecularCache cache(params());
    cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, 1);
    cache.access({0x4000, Asid{0}, AccessType::Write});
    SimAccess{cache}.migrateApplication(Asid{0}, ClusterId{1}, 1);
    EXPECT_GE(cache.stats().forAsid(Asid{0}).writebacks, 1u);
}

TEST(MigrationDeath, UnknownAsid)
{
    MolecularCache cache(params());
    EXPECT_EXIT(SimAccess{cache}.migrateApplication(Asid{9}, ClusterId{0}, 0),
                ::testing::ExitedWithCode(1), "not registered");
}

TEST(MigrationDeath, BadDestination)
{
    MolecularCache cache(params());
    cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, 1);
    EXPECT_EXIT(SimAccess{cache}.migrateApplication(Asid{0}, ClusterId{7}, 0),
                ::testing::ExitedWithCode(1), "cluster");
    EXPECT_EXIT(SimAccess{cache}.migrateApplication(Asid{0}, ClusterId{1}, 7),
                ::testing::ExitedWithCode(1), "tile");
}

} // namespace
} // namespace molcache
