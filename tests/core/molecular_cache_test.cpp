#include "core/molecular_cache.hpp"
#include "core/sim_access.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace molcache {
namespace {

MolecularCacheParams
smallParams()
{
    MolecularCacheParams p;
    p.moleculeSize = 8_KiB;
    p.moleculesPerTile = 8; // 64 KiB tiles
    p.tilesPerCluster = 2;
    p.clusters = 2;
    p.initialAllocation = InitialAllocation::Small;
    p.initialMolecules = 2;
    p.resizePeriod = 1000;
    p.minResizePeriod = 100;
    p.minIntervalSample = 100;
    return p;
}

MemAccess
read(Addr addr, u16 asid = 0)
{
    return {addr, Asid{asid}, AccessType::Read};
}

MemAccess
write(Addr addr, u16 asid = 0)
{
    return {addr, Asid{asid}, AccessType::Write};
}

TEST(MolecularCache, GeometryDerivation)
{
    const MolecularCacheParams p = smallParams();
    EXPECT_EQ(p.totalTiles(), 4u);
    EXPECT_EQ(p.totalMolecules(), 32u);
    EXPECT_EQ(p.tileSizeBytes(), 64_KiB);
    EXPECT_EQ(p.clusterSizeBytes(), 128_KiB);
    EXPECT_EQ(p.totalSizeBytes(), 256_KiB);
    EXPECT_EQ(p.linesPerMolecule(), 128u);
}

TEST(MolecularCache, RegistrationAllocatesInitialRegion)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{1}, 0.1);
    EXPECT_TRUE(cache.hasApplication(Asid{1}));
    EXPECT_EQ(cache.region(Asid{1}).size(), 2u);
    EXPECT_EQ(cache.freeMolecules(), 30u);
}

TEST(MolecularCache, HalfTileInitialAllocation)
{
    MolecularCacheParams p = smallParams();
    p.initialAllocation = InitialAllocation::HalfTile;
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.1);
    EXPECT_EQ(cache.region(Asid{0}).size(), 4u); // 8 per tile / 2
}

TEST(MolecularCache, DefaultPlacementSpreadsClusters)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);
    cache.registerApplication(Asid{1}, 0.1);
    cache.registerApplication(Asid{2}, 0.1);
    EXPECT_EQ(cache.region(Asid{0}).homeCluster(), ClusterId{0});
    EXPECT_EQ(cache.region(Asid{1}).homeCluster(), ClusterId{1});
    EXPECT_EQ(cache.region(Asid{2}).homeCluster(), ClusterId{0});
    EXPECT_NE(cache.region(Asid{0}).homeTile(), cache.region(Asid{2}).homeTile());
}

TEST(MolecularCache, MissThenHit)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);
    const AccessResult miss = cache.access(read(0x1000));
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.level, 2u);
    const AccessResult hit = cache.access(read(0x1000));
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.level, 0u);
}

TEST(MolecularCache, AutoRegistersUnknownAsid)
{
    MolecularCache cache(smallParams());
    cache.access(read(0x1000, 9));
    EXPECT_TRUE(cache.hasApplication(Asid{9}));
    EXPECT_DOUBLE_EQ(cache.region(Asid{9}).resizeGoal,
                     cache.params().defaultMissRateGoal);
}

TEST(MolecularCache, AsidIsolation)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);
    cache.registerApplication(Asid{1}, 0.1);
    cache.access(read(0x1000, 0));
    // Same address from another ASID must not hit app 0's copy.
    EXPECT_FALSE(cache.access(read(0x1000, 1)).hit);
    // And both now hold private copies.
    EXPECT_TRUE(cache.access(read(0x1000, 0)).hit);
    EXPECT_TRUE(cache.access(read(0x1000, 1)).hit);
}

TEST(MolecularCache, RemoteTileHitViaUlmo)
{
    MolecularCacheParams p = smallParams();
    p.initialAllocation = InitialAllocation::FullTile;
    MolecularCache cache(p);
    // Two apps on the same cluster: app 0 fills its whole home tile, so
    // growth must draw from the other tile via Ulmo.
    cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, 1);
    // Touch more lines than the home tile holds to force remote grants.
    // Home tile: 8 molecules = 1024 lines. Resizing needs miss pressure.
    for (u32 pass = 0; pass < 3; ++pass)
        for (Addr a = 0; a < 3000; ++a)
            cache.access(read(a * 64));
    const auto &region = cache.region(Asid{0});
    EXPECT_GT(region.byTile().size(), 1u)
        << "region never grew past its home tile";
    EXPECT_GT(cache.ulmo(ClusterId{0}).donations(), 0u);
    EXPECT_GT(cache.ulmo(ClusterId{0}).tileMisses(), 0u);
    EXPECT_GT(cache.ulmo(ClusterId{0}).remoteHits(), 0u);
}

TEST(MolecularCache, WritebackOnDirtyReplacement)
{
    MolecularCacheParams p = smallParams();
    p.resizePeriod = 1u << 30; // effectively disable resizing
    p.maxResizePeriod = 1u << 30;
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.1);
    // 2 molecules = 256 lines; overflow them with dirty lines.
    for (Addr a = 0; a < 512; ++a)
        cache.access(write(a * 64));
    EXPECT_GT(cache.stats().global().writebacks, 0u);
}

TEST(MolecularCache, LineMultipleFetchesNeighbours)
{
    MolecularCacheParams p = smallParams();
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, /*lineMultiple=*/2);
    EXPECT_FALSE(cache.access(read(0x1000)).hit);
    // The 128B unit [0x1000, 0x1080) was fetched together.
    EXPECT_TRUE(cache.access(read(0x1040)).hit);
    EXPECT_FALSE(cache.access(read(0x1080)).hit); // next unit
}

TEST(MolecularCache, LineMultipleAlignsDown)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, /*lineMultiple=*/4);
    EXPECT_FALSE(cache.access(read(0x10c0)).hit); // last line of its unit
    EXPECT_TRUE(cache.access(read(0x1000)).hit);  // unit base was fetched
    EXPECT_TRUE(cache.access(read(0x1040)).hit);
    EXPECT_TRUE(cache.access(read(0x1080)).hit);
}

TEST(MolecularCache, SharedMoleculeServesAllAsids)
{
    MolecularCacheParams p = smallParams();
    p.resizePeriod = 1u << 30;
    p.maxResizePeriod = 1u << 30;
    MolecularCache cache(p);
    // Both apps enter through tile 0 of cluster 0.
    cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, 1);
    cache.registerApplication(Asid{2}, 0.1, ClusterId{0}, 0, 1);
    cache.access(read(0x2000, 0)); // app 0 caches the line
    const MoleculeId holder = [&] {
        for (const auto &[tile, mols] : cache.region(Asid{0}).byTile())
            for (const MoleculeId m : mols)
                if (cache.molecule(m).lookup(0x2000))
                    return m;
        return kInvalidMolecule;
    }();
    ASSERT_NE(holder, kInvalidMolecule);
    SimAccess{cache}.setSharedMolecule(holder, true);
    // The shared hit services app 2 without filling its own region...
    EXPECT_TRUE(cache.access(read(0x2000, 2)).hit);
    SimAccess{cache}.setSharedMolecule(holder, false);
    // ...so once unshared, app 2 no longer sees the line.
    EXPECT_FALSE(cache.access(read(0x2000, 2)).hit);
}

TEST(MolecularCache, CrossClusterInvalidationOnSharedAddress)
{
    MolecularCacheParams p = smallParams();
    p.resizePeriod = 1u << 30;
    p.maxResizePeriod = 1u << 30;
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, 1); // cluster 0
    cache.registerApplication(Asid{1}, 0.1, ClusterId{1}, 0, 1); // cluster 1
    // Both threads of a logically-shared address space touch one line.
    cache.access(read(0x3000, 0));
    cache.access(read(0x3000, 1));
    EXPECT_EQ(cache.directory().holderCount(LineAddr{0x3000}), 2u);
    // A write from cluster 0 invalidates cluster 1's copy.
    cache.access(write(0x3000, 0));
    EXPECT_EQ(cache.directory().holderCount(LineAddr{0x3000}), 1u);
    EXPECT_FALSE(cache.access(read(0x3000, 1)).hit);
    EXPECT_GT(cache.ulmo(ClusterId{1}).invalidationsApplied(), 0u);
    // The invalidation crossed the inter-cluster interconnect.
    EXPECT_GT(cache.noc().stats().messages, 0u);
    EXPECT_GT(cache.noc().stats().energyNj, 0.0);
}

TEST(MolecularCache, NocQuietWithoutSharing)
{
    // Disjoint address spaces: the coherence interconnect carries
    // nothing (the paper's workloads run in this regime).
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, 1);
    cache.registerApplication(Asid{1}, 0.1, ClusterId{1}, 0, 1);
    for (Addr a = 0; a < 200; ++a) {
        cache.access(write(a * 64, 0));
        cache.access(write((a * 64) | (1ull << 40), 1));
    }
    EXPECT_EQ(cache.noc().stats().messages, 0u);
}

TEST(MolecularCache, EnergyAccountingMonotone)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);
    EXPECT_DOUBLE_EQ(cache.totalEnergyNj(), 0.0);
    cache.access(read(0x0));
    const double after_one = cache.totalEnergyNj();
    EXPECT_GT(after_one, 0.0);
    cache.access(read(0x0));
    EXPECT_GT(cache.totalEnergyNj(), after_one);
    EXPECT_GT(cache.worstCaseAccessEnergyNj(),
              cache.averageAccessEnergyNj());
}

TEST(MolecularCache, UnregisterFreesMolecules)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);
    cache.access(write(0x1000, 0));
    const u32 free_before = cache.freeMolecules();
    cache.unregisterApplication(Asid{0});
    EXPECT_FALSE(cache.hasApplication(Asid{0}));
    EXPECT_GT(cache.freeMolecules(), free_before);
    EXPECT_EQ(cache.freeMolecules(), cache.params().totalMolecules());
}

TEST(MolecularCache, ResizeGrowsUnderMissPressure)
{
    MolecularCacheParams p = smallParams();
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, 1);
    const u32 initial = cache.region(Asid{0}).size();
    // Random traffic over 96 KiB — more than the 16 KiB initial region,
    // less than the cluster — should trigger growth.
    Pcg32 rng(3);
    for (u32 i = 0; i < 60000; ++i)
        cache.access(read(static_cast<Addr>(rng.below(1536)) * 64));
    EXPECT_GT(cache.region(Asid{0}).size(), initial);
    EXPECT_GT(cache.resizeCycles(), 0u);
}

TEST(MolecularCache, WithdrawalWhenOvershooting)
{
    MolecularCacheParams p = smallParams();
    p.initialAllocation = InitialAllocation::FullTile;
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, /*goal=*/0.5, ClusterId{0}, 0, 1);
    // Tiny working set, goal 50%: the region must shrink.
    for (u32 i = 0; i < 50000; ++i)
        cache.access(read((i % 16) * 64));
    EXPECT_LT(cache.region(Asid{0}).size(), 8u);
}

TEST(MolecularCache, StatsPerAsid)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);
    cache.registerApplication(Asid{1}, 0.1);
    cache.access(read(0x0, 0));
    cache.access(read(0x0, 0));
    cache.access(read(0x40, 1));
    EXPECT_EQ(cache.stats().forAsid(Asid{0}).accesses, 2u);
    EXPECT_EQ(cache.stats().forAsid(Asid{0}).hits, 1u);
    EXPECT_EQ(cache.stats().forAsid(Asid{1}).misses, 1u);
}

TEST(MolecularCache, HitPerMoleculeDefinition)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);
    cache.access(read(0x0));
    cache.access(read(0x0));
    cache.access(read(0x0));
    // 2 hits / 3 accesses / 2 molecules.
    EXPECT_NEAR(cache.hitPerMoleculeOf(Asid{0}), (2.0 / 3.0) / 2.0, 1e-12);
}

TEST(MolecularCache, NameMentionsGeometry)
{
    MolecularCache cache(smallParams());
    const std::string n = cache.name();
    EXPECT_NE(n.find("molecular"), std::string::npos);
    EXPECT_NE(n.find("256KiB"), std::string::npos);
    EXPECT_NE(n.find("randy"), std::string::npos);
}

TEST(MolecularCacheDeath, DoubleRegistration)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);
    EXPECT_EXIT(cache.registerApplication(Asid{0}, 0.2),
                ::testing::ExitedWithCode(1), "already registered");
}

TEST(MolecularCacheDeath, BadPlacement)
{
    MolecularCache cache(smallParams());
    EXPECT_EXIT(cache.registerApplication(Asid{0}, 0.1, ClusterId{9}, 0, 1),
                ::testing::ExitedWithCode(1), "cluster");
    EXPECT_EXIT(cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 9, 1),
                ::testing::ExitedWithCode(1), "tile");
    EXPECT_EXIT(cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, 3),
                ::testing::ExitedWithCode(1), "line multiple");
}

/** Property: with either placement policy, a working set that fits the
 * initial region entirely hits after one pass. */
class WarmFitProperty : public ::testing::TestWithParam<PlacementPolicy>
{
};

TEST_P(WarmFitProperty, SecondPassAllHits)
{
    MolecularCacheParams p = smallParams();
    p.placement = GetParam();
    p.resizePeriod = 1u << 30; // no resizing: capacity stays 2 molecules
    p.maxResizePeriod = 1u << 30;
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.1);
    // 2 molecules = 256 lines; use 128 distinct lines, conflict-free
    // within a molecule (one per index), so both policies must hold them.
    for (Addr a = 0; a < 128; ++a)
        cache.access(read(a * 64));
    u32 hits = 0;
    for (Addr a = 0; a < 128; ++a)
        hits += cache.access(read(a * 64)).hit ? 1 : 0;
    // Random placement can duplicate a line across molecules only on
    // refetch; with distinct indices there is exactly one slot per
    // molecule pair — collisions across the 2 molecules are possible for
    // Random (two lines with the same index map to the same 2 slots).
    // 128 distinct indices over 128 lines: no index repeats, so all hit.
    EXPECT_EQ(hits, 128u);
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, WarmFitProperty,
                         ::testing::Values(PlacementPolicy::Random,
                                           PlacementPolicy::Randy));

} // namespace
} // namespace molcache
