#include "power/cacti.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace molcache {
namespace {

CacheGeometry
geom(Bytes size, u32 assoc, u32 ports = 1)
{
    CacheGeometry g;
    g.sizeBytes = size;
    g.associativity = assoc;
    g.ports = ports;
    return g;
}

TEST(Cacti, PowerConversion)
{
    // nJ x MHz / 1000 = W: 24.8 nJ at 199 MHz is ~4.94 W (paper table 4).
    EXPECT_NEAR(dynamicPowerWatts(24.8, 199), 4.935, 0.01);
    EXPECT_DOUBLE_EQ(dynamicPowerWatts(0, 500), 0.0);
}

TEST(Cacti, EnergyGrowsWithSize)
{
    const CactiModel m(TechNode::Nm70);
    double prev = 0.0;
    for (const Bytes size : {8_KiB, 64_KiB, 1_MiB, 8_MiB}) {
        const double e = m.evaluate(geom(size, 1)).readEnergyNj;
        EXPECT_GT(e, prev) << formatSize(size);
        prev = e;
    }
}

TEST(Cacti, DelayGrowsWithSize)
{
    const CactiModel m(TechNode::Nm70);
    const double small = m.evaluate(geom(8_KiB, 1)).cycleNs;
    const double large = m.evaluate(geom(8_MiB, 1)).cycleNs;
    EXPECT_GT(large, 2 * small);
}

TEST(Cacti, EnergyGrowsWithParallelAssociativity)
{
    const CactiModel m(TechNode::Nm70);
    const double e1 = m.evaluate(geom(8_MiB, 1, 4)).readEnergyNj;
    const double e2 = m.evaluate(geom(8_MiB, 2, 4)).readEnergyNj;
    const double e4 = m.evaluate(geom(8_MiB, 4, 4)).readEnergyNj;
    EXPECT_GT(e2, e1);
    EXPECT_GT(e4, e2);
    // Paper shape: 4-way costs ~1.5x the DM energy.
    EXPECT_NEAR(e4 / e1, 1.5, 0.25);
}

TEST(Cacti, HighAssociativityGoesSequential)
{
    const CactiModel m(TechNode::Nm70);
    const PowerTiming p4 = m.evaluate(geom(8_MiB, 4, 4));
    const PowerTiming p8 = m.evaluate(geom(8_MiB, 8, 4));
    EXPECT_EQ(p4.mode, AccessMode::Parallel);
    EXPECT_EQ(p8.mode, AccessMode::Sequential);
    // Sequential trades latency for energy: slower but cheaper than a
    // hypothetical parallel 8-way.
    EXPECT_GT(p8.cycleNs, 1.5 * p4.cycleNs);
    CacheGeometry forced = geom(8_MiB, 8, 4);
    forced.mode = AccessMode::Parallel;
    EXPECT_LT(p8.readEnergyNj, m.evaluate(forced).readEnergyNj);
}

TEST(Cacti, PortsCostEnergyAndDelay)
{
    const CactiModel m(TechNode::Nm70);
    const PowerTiming p1 = m.evaluate(geom(1_MiB, 4, 1));
    const PowerTiming p4 = m.evaluate(geom(1_MiB, 4, 4));
    EXPECT_GT(p4.readEnergyNj, 2 * p1.readEnergyNj);
    EXPECT_GT(p4.cycleNs, p1.cycleNs);
    EXPECT_GT(p4.areaMm2, p1.areaMm2);
}

TEST(Cacti, Table4OperatingPoints)
{
    // The calibration anchor: 8MB 4-port traditional caches should land
    // near the paper's Table 4 (tolerances are generous — shape, not
    // decimals).
    const CactiModel m(TechNode::Nm70);
    const PowerTiming dm = m.evaluate(geom(8_MiB, 1, 4));
    EXPECT_NEAR(dm.readEnergyNj, 24.8, 4.0);
    EXPECT_NEAR(dm.frequencyMhz(), 199, 40);
    const PowerTiming w4 = m.evaluate(geom(8_MiB, 4, 4));
    EXPECT_NEAR(dynamicPowerWatts(w4.readEnergyNj, w4.frequencyMhz()), 7.66,
                1.2);
    const PowerTiming w8 = m.evaluate(geom(8_MiB, 8, 4));
    EXPECT_LT(w8.frequencyMhz(), 130); // paper: 96 MHz
    EXPECT_LT(dynamicPowerWatts(w8.readEnergyNj, w8.frequencyMhz()), 4.5);
}

TEST(Cacti, MoleculeIsSubNanojoule)
{
    const CactiModel m(TechNode::Nm70);
    CacheGeometry mol = geom(8_KiB, 1);
    mol.extraTagBits = 17;
    const PowerTiming pt = m.evaluate(mol);
    EXPECT_LT(pt.readEnergyNj, 1.0);
    EXPECT_GT(pt.readEnergyNj, 0.01);
    EXPECT_LT(pt.cycleNs, 2.0);
}

TEST(Cacti, OlderNodesCostMore)
{
    const CactiModel m70(TechNode::Nm70);
    const CactiModel m130(TechNode::Nm130);
    const auto g = geom(1_MiB, 4);
    EXPECT_GT(m130.evaluate(g).readEnergyNj, m70.evaluate(g).readEnergyNj);
    EXPECT_GT(m130.evaluate(g).cycleNs, m70.evaluate(g).cycleNs);
}

TEST(Cacti, BreakdownSumsToTotal)
{
    const CactiModel m(TechNode::Nm70);
    const PowerTiming pt = m.evaluate(geom(2_MiB, 4, 2));
    double sum = 0.0;
    for (const auto &[name, nj] : pt.energyBreakdownNj)
        sum += nj;
    EXPECT_NEAR(sum, pt.readEnergyNj, 1e-9);
}

TEST(Cacti, WriteEnergyPositive)
{
    const CactiModel m(TechNode::Nm70);
    const PowerTiming pt = m.evaluate(geom(1_MiB, 2));
    EXPECT_GT(pt.writeEnergyNj, 0.0);
}

TEST(CactiDeath, DegenerateGeometry)
{
    const CactiModel m(TechNode::Nm70);
    CacheGeometry g = geom(Bytes{0}, 1);
    EXPECT_EXIT(m.evaluate(g), ::testing::ExitedWithCode(1), "degenerate");
}

TEST(Tech, ParseNodes)
{
    EXPECT_EQ(parseTechNode("70"), TechNode::Nm70);
    EXPECT_EQ(parseTechNode("100nm"), TechNode::Nm100);
    EXPECT_EQ(parseTechNode("130"), TechNode::Nm130);
    EXPECT_EXIT(parseTechNode("45"), ::testing::ExitedWithCode(1),
                "unknown technology");
}

} // namespace
} // namespace molcache
