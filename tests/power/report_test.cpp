#include "power/report.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace molcache {
namespace {

CacheGeometry
moleculeGeom()
{
    CacheGeometry g;
    g.sizeBytes = 8_KiB;
    g.associativity = 1;
    g.extraTagBits = 17;
    return g;
}

TEST(Report, TraditionalRowConsistent)
{
    const CactiModel m(TechNode::Nm70);
    CacheGeometry g;
    g.sizeBytes = 8_MiB;
    g.associativity = 4;
    g.ports = 4;
    const PowerRow row = traditionalPowerRow(m, g, "8MB 4way");
    EXPECT_EQ(row.label, "8MB 4way");
    EXPECT_GT(row.frequencyMhz, 0.0);
    EXPECT_GT(row.energyNj, 0.0);
    EXPECT_NEAR(row.powerWatts,
                dynamicPowerWatts(row.energyNj, row.frequencyMhz), 1e-9);
    EXPECT_NEAR(row.cycleNs, 1000.0 / row.frequencyMhz, 1e-9);
}

TEST(Report, MolecularEnergyLinearInProbes)
{
    const CactiModel m(TechNode::Nm70);
    const auto g = moleculeGeom();
    const double e0 = molecularAccessEnergyNj(m, g, 64, 0);
    const double e1 = molecularAccessEnergyNj(m, g, 64, 1);
    const double e2 = molecularAccessEnergyNj(m, g, 64, 2);
    EXPECT_GT(e0, 0.0); // fixed tile cost even with nothing probed
    EXPECT_NEAR(e2 - e1, e1 - e0, 1e-12); // linear slope
    EXPECT_NEAR(e1 - e0, molecularPerProbeEnergyNj(m, g, 64), 1e-12);
}

TEST(Report, WorstCaseTileNearTraditionalDm)
{
    // Table 4's key comparison: a fully-enabled 512KB tile (64 molecules)
    // costs the same order as an 8MB DM access — the molecular advantage
    // comes from NOT enabling everything.
    const CactiModel m(TechNode::Nm70);
    const double tile_worst = molecularAccessEnergyNj(m, moleculeGeom(),
                                                      64, 64);
    CacheGeometry dm;
    dm.sizeBytes = 8_MiB;
    dm.ports = 4;
    const double trad = m.evaluate(dm).readEnergyNj;
    EXPECT_GT(tile_worst, 0.5 * trad);
    EXPECT_LT(tile_worst, 1.5 * trad);
}

TEST(Report, SelectiveEnablementSavesEnergy)
{
    const CactiModel m(TechNode::Nm70);
    const auto g = moleculeGeom();
    // A typical partition probes ~32 molecules; that should cost well
    // under the all-enabled worst case.
    EXPECT_LT(molecularAccessEnergyNj(m, g, 64, 32),
              0.7 * molecularAccessEnergyNj(m, g, 64, 64));
}

TEST(Report, BiggerTilesCostMoreFixed)
{
    const CactiModel m(TechNode::Nm70);
    const auto g = moleculeGeom();
    EXPECT_GT(molecularTileFixedEnergyNj(m, g, 256),
              molecularTileFixedEnergyNj(m, g, 32));
}

} // namespace
} // namespace molcache
