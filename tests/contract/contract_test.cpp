/**
 * @file
 * Contract-macro behavior: counting, handler dispatch, message
 * formatting, and the active/inactive split.  The tier-1 build keeps
 * contracts armed (MOLCACHE_CONTRACTS_ENABLED), so the bulk of the file
 * tests the active path; the #else branch compiles in a pure Release
 * build and verifies the macros are genuinely free there.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "contract/contract.hpp"

namespace molcache {
namespace {

using contract::Counters;
using contract::Handler;
using contract::Kind;

/** Installs a recording handler for one test, restores on destruction. */
class ScopedRecorder
{
  public:
    struct Event
    {
        Kind kind;
        std::string cond;
        std::string file;
        int line;
        std::string msg;
    };

    ScopedRecorder()
    {
        contract::resetCounters();
        previous_ = contract::setHandler(
            [this](Kind kind, const char *cond, const char *file, int line,
                   const std::string &msg) {
                events.push_back({kind, cond, file, line, msg});
            });
    }

    ~ScopedRecorder()
    {
        contract::setHandler(previous_);
        contract::resetCounters();
    }

    std::vector<Event> events;

  private:
    Handler previous_;
};

TEST(Contract, KindNames)
{
    EXPECT_STREQ(contract::kindName(Kind::Expect), "precondition");
    EXPECT_STREQ(contract::kindName(Kind::Ensure), "postcondition");
    EXPECT_STREQ(contract::kindName(Kind::Invariant), "invariant");
}

TEST(Contract, NoteViolationCountsPerKind)
{
    ScopedRecorder rec;
    contract::noteViolation(Kind::Expect, "a", "f.cpp", 1, "");
    contract::noteViolation(Kind::Expect, "b", "f.cpp", 2, "");
    contract::noteViolation(Kind::Ensure, "c", "f.cpp", 3, "");
    contract::noteViolation(Kind::Invariant, "d", "f.cpp", 4, "");
    const Counters &c = contract::counters();
    EXPECT_EQ(c.expectFailures, 2u);
    EXPECT_EQ(c.ensureFailures, 1u);
    EXPECT_EQ(c.invariantFailures, 1u);
    EXPECT_EQ(c.total(), 4u);
    contract::resetCounters();
    EXPECT_EQ(contract::counters().total(), 0u);
}

#if MOLCACHE_CONTRACTS_ACTIVE

TEST(Contract, PassingChecksAreSilent)
{
    ScopedRecorder rec;
    MOLCACHE_EXPECT(1 + 1 == 2);
    MOLCACHE_ENSURE(true, "never shown");
    MOLCACHE_INVARIANT(2 > 1);
    EXPECT_TRUE(rec.events.empty());
    EXPECT_EQ(contract::counters().total(), 0u);
}

TEST(Contract, FailingExpectDispatchesWithContext)
{
    ScopedRecorder rec;
    const int got = 3;
    MOLCACHE_EXPECT(got == 4, "got ", got);
    ASSERT_EQ(rec.events.size(), 1u);
    EXPECT_EQ(rec.events[0].kind, Kind::Expect);
    EXPECT_EQ(rec.events[0].cond, "got == 4");
    EXPECT_NE(rec.events[0].file.find("contract_test"),
              std::string::npos);
    EXPECT_EQ(rec.events[0].msg, "got 3");
    EXPECT_EQ(contract::counters().expectFailures, 1u);
}

TEST(Contract, EachMacroReportsItsKind)
{
    ScopedRecorder rec;
    MOLCACHE_EXPECT(false);
    MOLCACHE_ENSURE(false);
    MOLCACHE_INVARIANT(false);
    ASSERT_EQ(rec.events.size(), 3u);
    EXPECT_EQ(rec.events[0].kind, Kind::Expect);
    EXPECT_EQ(rec.events[1].kind, Kind::Ensure);
    EXPECT_EQ(rec.events[2].kind, Kind::Invariant);
}

TEST(Contract, ConditionEvaluatedExactlyOnce)
{
    ScopedRecorder rec;
    int calls = 0;
    MOLCACHE_EXPECT([&] {
        ++calls;
        return false;
    }());
    EXPECT_EQ(calls, 1);
    ASSERT_EQ(rec.events.size(), 1u);
}

TEST(Contract, SetHandlerReturnsPrevious)
{
    ScopedRecorder rec;
    // rec's handler is installed; swapping in another returns it.
    int outer = 0;
    Handler mine = contract::setHandler(
        [&outer](Kind, const char *, const char *, int,
                 const std::string &) { ++outer; });
    MOLCACHE_EXPECT(false);
    EXPECT_EQ(outer, 1);
    EXPECT_TRUE(rec.events.empty());
    contract::setHandler(mine); // put rec's back for its destructor
}

TEST(ContractDeath, DefaultHandlerPanics)
{
    contract::resetCounters();
    EXPECT_DEATH(MOLCACHE_EXPECT(false, "boom"),
                 "precondition.*violated.*boom");
}

#else // !MOLCACHE_CONTRACTS_ACTIVE

TEST(Contract, CompiledOutChecksDoNotEvaluate)
{
    ScopedRecorder rec;
    int evaluations = 0;
    MOLCACHE_EXPECT([&] {
        ++evaluations;
        return false;
    }());
    MOLCACHE_ENSURE(false);
    MOLCACHE_INVARIANT(false);
    EXPECT_EQ(evaluations, 0) << "Release build must not run conditions";
    EXPECT_TRUE(rec.events.empty());
    EXPECT_EQ(contract::counters().total(), 0u);
}

#endif // MOLCACHE_CONTRACTS_ACTIVE

} // namespace
} // namespace molcache
