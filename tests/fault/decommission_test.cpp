/**
 * @file
 * End-to-end tests of the fault model through the molecular cache:
 * decommissioning, parity scrubbing of transient flips, tile outages,
 * resizer-driven recovery, the invariant audit and SimResult surfacing.
 */

#include <gtest/gtest.h>

#include "core/molecular_cache.hpp"
#include "core/sim_access.hpp"
#include "fault/invariant_checker.hpp"
#include "mem/interleave.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

MolecularCacheParams
smallParams()
{
    MolecularCacheParams p;
    p.moleculeSize = 8_KiB;
    p.moleculesPerTile = 8;
    p.tilesPerCluster = 2;
    p.clusters = 1;
    p.initialAllocation = InitialAllocation::Small;
    p.initialMolecules = 2;
    p.resizePeriod = 200;
    p.minResizePeriod = 50;
    p.maxResizePeriod = 2000;
    p.minIntervalSample = 50;
    return p;
}

void
expectClean(const MolecularCache &cache)
{
    const auto rep = InvariantChecker::check(cache);
    EXPECT_TRUE(rep.ok()) << rep.violations.front();
    EXPECT_GT(rep.checksRun, 0u);
}

Addr
addrFor(Asid asid, u32 n)
{
    return (static_cast<Addr>(asid.value()) << 34) +
           static_cast<Addr>(n) * 64;
}

void
warm(MolecularCache &cache, Asid asid, u32 refs, u32 footprint)
{
    Pcg32 rng(99);
    for (u32 i = 0; i < refs; ++i) {
        cache.access({addrFor(asid, rng.below(footprint)), asid,
                      rng.chance(0.25) ? AccessType::Write
                                       : AccessType::Read});
    }
}

TEST(Decommission, FreeMoleculeLeavesPoolForever)
{
    MolecularCache cache(smallParams());
    const u32 total = cache.params().totalMolecules();
    ASSERT_EQ(cache.freeMolecules(), total);

    EXPECT_TRUE(SimAccess{cache}.decommissionMolecule(MoleculeId{0}));
    EXPECT_EQ(cache.freeMolecules(), total - 1);
    EXPECT_EQ(cache.decommissionedMolecules(), 1u);
    EXPECT_EQ(cache.faultStats().moleculesDecommissioned, 1u);
    EXPECT_TRUE(cache.molecule(MoleculeId{0}).decommissioned());

    // Grab every remaining molecule of the home tile: the fenced one must
    // never be handed out.
    cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, 1);
    warm(cache, Asid{0}, 4000, 2048);
    EXPECT_FALSE(cache.region(Asid{0}).contains(MoleculeId{0}));
    expectClean(cache);
}

TEST(Decommission, SecondCallIsNoop)
{
    MolecularCache cache(smallParams());
    EXPECT_TRUE(SimAccess{cache}.decommissionMolecule(MoleculeId{3}));
    EXPECT_FALSE(SimAccess{cache}.decommissionMolecule(MoleculeId{3}));
    EXPECT_EQ(cache.faultStats().moleculesDecommissioned, 1u);
}

TEST(Decommission, OwnedMoleculeDrainsAndRegionRecovers)
{
    MolecularCache cache(smallParams());
    // A mid-range goal keeps the region around half the cluster, so free
    // molecules remain for the recovery re-grant to draw from.
    cache.registerApplication(Asid{0}, 0.3);
    warm(cache, Asid{0}, 3000, 1024);
    ASSERT_GT(cache.freeMolecules(), 0u);

    const Region &region = cache.region(Asid{0});
    const u32 before = region.size();
    ASSERT_GT(before, 0u);
    const MoleculeId victim = region.rows()[0][0];

    EXPECT_TRUE(SimAccess{cache}.decommissionMolecule(victim));
    EXPECT_EQ(region.size(), before - 1);
    EXPECT_FALSE(region.contains(victim));
    EXPECT_TRUE(cache.molecule(victim).decommissioned());
    EXPECT_EQ(cache.molecule(victim).validLines(), 0u);
    EXPECT_EQ(region.moleculesLost, 1u);
    EXPECT_TRUE(region.recovering);
    EXPECT_EQ(cache.ulmo(ClusterId{0}).decommissions(), 1u);
    expectClean(cache);

    // The next resize epochs re-acquire the lost capacity from the pool.
    warm(cache, Asid{0}, 3000, 1024);
    EXPECT_EQ(region.pendingReacquire, 0u);
    EXPECT_GT(cache.resizer().recoveryGrants(), 0u);
    expectClean(cache);
}

TEST(Decommission, HardFaultsCountUpToThreshold)
{
    MolecularCacheParams p = smallParams();
    p.hardFaultThreshold = 3;
    MolecularCache cache(p);

    SimAccess{cache}.injectHardFault(MoleculeId{5});
    SimAccess{cache}.injectHardFault(MoleculeId{5});
    EXPECT_FALSE(cache.molecule(MoleculeId{5}).decommissioned());
    EXPECT_EQ(cache.molecule(MoleculeId{5}).hardFaults(), 2u);

    SimAccess{cache}.injectHardFault(MoleculeId{5});
    EXPECT_TRUE(cache.molecule(MoleculeId{5}).decommissioned());
    EXPECT_EQ(cache.faultStats().hardFaultEvents, 3u);
    EXPECT_EQ(cache.faultStats().moleculesDecommissioned, 1u);

    // Further detections on a fenced molecule are counted but harmless.
    SimAccess{cache}.injectHardFault(MoleculeId{5});
    EXPECT_EQ(cache.faultStats().hardFaultEvents, 4u);
    EXPECT_EQ(cache.faultStats().moleculesDecommissioned, 1u);
}

TEST(TransientFlip, DetectedOnNextProbeAndReadAsMiss)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);
    const Addr addr = addrFor(Asid{0}, 7);
    cache.access({addr, Asid{0}, AccessType::Write}); // fill, dirty
    ASSERT_TRUE(cache.access({addr, Asid{0}, AccessType::Read}).hit);

    // Poison the slot in every molecule of the region (only one of them
    // actually holds the line; flips into invalid slots are harmless).
    const u32 index = static_cast<u32>(addr / cache.params().lineSize) %
                      cache.params().linesPerMolecule();
    for (const auto &row : cache.region(Asid{0}).rows())
        for (const MoleculeId id : row)
            SimAccess{cache}.injectTransientFlip(id, index);

    const AccessResult r = cache.access({addr, Asid{0}, AccessType::Read});
    EXPECT_FALSE(r.hit); // parity caught the corruption: treated as a miss
    EXPECT_EQ(cache.faultStats().transientFlipsDetected, 1u);
    EXPECT_EQ(cache.faultStats().dirtyLinesLost, 1u); // corrupt, dropped

    // The refill is clean and hits again.
    EXPECT_TRUE(cache.access({addr, Asid{0}, AccessType::Read}).hit);
    expectClean(cache);
}

TEST(TileOutage, FencesWholeTileAndRegionMigratesCapacity)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, 1); // home tile 0
    warm(cache, Asid{0}, 2000, 1024);
    ASSERT_GT(cache.region(Asid{0}).size(), 0u);

    SimAccess{cache}.injectTileOutage(TileId{0});
    EXPECT_EQ(cache.tile(TileId{0}).usableMolecules(), 0u);
    EXPECT_EQ(cache.decommissionedMolecules(),
              cache.params().moleculesPerTile);
    EXPECT_EQ(cache.faultStats().tileOutages, 1u);
    expectClean(cache);

    // The region rebuilds out of the cluster's surviving tile.
    warm(cache, Asid{0}, 4000, 1024);
    EXPECT_GT(cache.region(Asid{0}).size(), 0u);
    for (const auto &[tile, mols] : cache.region(Asid{0}).byTile())
        EXPECT_NE(tile, TileId{0});
    expectClean(cache);
}

TEST(FaultSchedule, EventsFireOnAccessTicks)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);

    FaultInjector inj;
    inj.schedule({3, FaultKind::HardFault, 14, 0});
    SimAccess{cache}.setFaultInjector(std::move(inj));

    cache.access({addrFor(Asid{0}, 0), Asid{0}, AccessType::Read});
    cache.access({addrFor(Asid{0}, 1), Asid{0}, AccessType::Read});
    EXPECT_FALSE(cache.molecule(MoleculeId{14}).decommissioned());
    cache.access({addrFor(Asid{0}, 2), Asid{0}, AccessType::Read});
    EXPECT_TRUE(cache.molecule(MoleculeId{14}).decommissioned());
    expectClean(cache);
}

TEST(InvariantAudit, AttachedHookRunsPeriodically)
{
    MolecularCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);
    const u64 before = InvariantChecker::auditsRun();
    InvariantChecker::attach(cache, 10);
    warm(cache, Asid{0}, 100, 256);
    EXPECT_GE(InvariantChecker::auditsRun(), before + 10);
}

TEST(SimResultFaults, CountersSurfaceThroughSimulator)
{
    MolecularCacheParams p = smallParams();
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.1);

    FaultScheduleSpec spec;
    spec.hardFraction = 0.25;
    spec.windowStart = 100;
    spec.windowEnd = 2000;
    SimAccess{cache}.setFaultInjector(FaultInjector::fromSpec(
        spec, p.totalMolecules(), p.moleculesPerTile, p.linesPerMolecule()));

    std::vector<MemAccess> refs;
    Pcg32 rng(5);
    for (u32 i = 0; i < 5000; ++i)
        refs.push_back({addrFor(Asid{0}, rng.below(512)), Asid{0}, AccessType::Read});
    VectorSource source(refs);

    GoalSet goals;
    goals.set(Asid{0}, 0.1);
    const SimResult result =
        Simulator::run(source, cache, RunOptions{}.withGoals(goals));

    EXPECT_EQ(result.moleculesDecommissioned, p.totalMolecules() / 4);
    // Only hard faults were scheduled: one event per distinct victim.
    EXPECT_EQ(result.faultEventsApplied, p.totalMolecules() / 4);
    expectClean(cache);
}

} // namespace
} // namespace molcache
