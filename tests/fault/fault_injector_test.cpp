/**
 * @file
 * Unit tests of the fault scheduler: seed determinism, event ordering,
 * spec parsing and validation.
 */

#include <gtest/gtest.h>

#include <set>

#include "fault/fault_injector.hpp"
#include "util/config.hpp"

namespace molcache {
namespace {

FaultScheduleSpec
richSpec(u64 seed)
{
    FaultScheduleSpec spec;
    spec.seed = seed;
    spec.hardFraction = 0.25;
    spec.eventsPerMolecule = 2;
    spec.transientFlips = 40;
    spec.tileOutages = 2;
    spec.windowStart = 1000;
    spec.windowEnd = 9000;
    return spec;
}

TEST(FaultInjector, SameSeedSameSchedule)
{
    const auto a = FaultInjector::fromSpec(richSpec(7), 64, 16, 128);
    const auto b = FaultInjector::fromSpec(richSpec(7), 64, 16, 128);
    ASSERT_EQ(a.events().size(), b.events().size());
    EXPECT_EQ(a.events(), b.events());
}

TEST(FaultInjector, DifferentSeedDifferentSchedule)
{
    const auto a = FaultInjector::fromSpec(richSpec(7), 64, 16, 128);
    const auto b = FaultInjector::fromSpec(richSpec(8), 64, 16, 128);
    EXPECT_NE(a.events(), b.events());
}

TEST(FaultInjector, EventsSortedAndInsideWindow)
{
    const FaultScheduleSpec spec = richSpec(3);
    const auto inj = FaultInjector::fromSpec(spec, 64, 16, 128);
    ASSERT_FALSE(inj.empty());
    Tick last = 0;
    for (const FaultEvent &ev : inj.events()) {
        EXPECT_GE(ev.tick, spec.windowStart);
        EXPECT_LT(ev.tick, spec.windowEnd);
        EXPECT_GE(ev.tick, last);
        last = ev.tick;
    }
}

TEST(FaultInjector, HardVictimsDistinctAndCounted)
{
    FaultScheduleSpec spec;
    spec.hardFraction = 0.5;
    spec.eventsPerMolecule = 1;
    spec.windowEnd = 100;
    const auto inj = FaultInjector::fromSpec(spec, 64, 16, 128);
    std::set<u32> victims;
    for (const FaultEvent &ev : inj.events()) {
        ASSERT_EQ(ev.kind, FaultKind::HardFault);
        EXPECT_LT(ev.target, 64u);
        victims.insert(ev.target);
    }
    // 50% of 64 molecules, each hit exactly once.
    EXPECT_EQ(victims.size(), 32u);
    EXPECT_EQ(inj.events().size(), 32u);
}

TEST(FaultInjector, ScheduleKeepsEqualTicksStable)
{
    FaultInjector inj;
    inj.schedule({5, FaultKind::HardFault, 1, 0});
    inj.schedule({5, FaultKind::HardFault, 2, 0});
    inj.schedule({3, FaultKind::TransientFlip, 9, 4});
    ASSERT_EQ(inj.scheduled(), 3u);
    EXPECT_EQ(inj.events()[0].target, 9u);
    EXPECT_EQ(inj.events()[1].target, 1u);
    EXPECT_EQ(inj.events()[2].target, 2u);
}

TEST(FaultInjector, DrainOnlyReleasesDueEvents)
{
    FaultInjector inj;
    inj.schedule({3, FaultKind::TransientFlip, 0, 0});
    inj.schedule({5, FaultKind::HardFault, 1, 0});
    inj.schedule({5, FaultKind::HardFault, 2, 0});

    EXPECT_EQ(inj.drainOne(2), nullptr);
    EXPECT_EQ(inj.pending(), 3u);

    const FaultEvent *first = inj.drainOne(3);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->kind, FaultKind::TransientFlip);
    EXPECT_EQ(inj.drainOne(3), nullptr);

    // Both tick-5 events drain in scheduling order at (or past) tick 5.
    const FaultEvent *a = inj.drainOne(6);
    const FaultEvent *b = inj.drainOne(6);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->target, 1u);
    EXPECT_EQ(b->target, 2u);
    EXPECT_EQ(inj.drainOne(1000), nullptr);
    EXPECT_EQ(inj.pending(), 0u);
}

TEST(FaultInjector, EmptyInjectorNeverFires)
{
    FaultInjector inj;
    EXPECT_TRUE(inj.empty());
    EXPECT_EQ(inj.drainOne(0), nullptr);
    EXPECT_EQ(inj.drainOne(~0ull), nullptr);
}

TEST(FaultConfig, HasFaultKeysDetectsSchedule)
{
    Config cfg;
    EXPECT_FALSE(hasFaultKeys(cfg));
    cfg.set("fault.transient_flips", "10");
    EXPECT_TRUE(hasFaultKeys(cfg));
}

TEST(FaultConfig, SpecFromConfigReadsKeysAndDefaults)
{
    Config cfg;
    cfg.set("fault.seed", "9");
    cfg.set("fault.hard_fraction", "0.125");
    cfg.set("fault.tile_outages", "1");
    const FaultScheduleSpec spec = faultSpecFromConfig(cfg, 500, 1500);
    EXPECT_EQ(spec.seed, 9u);
    EXPECT_DOUBLE_EQ(spec.hardFraction, 0.125);
    EXPECT_EQ(spec.eventsPerMolecule, 1u);
    EXPECT_EQ(spec.tileOutages, 1u);
    EXPECT_EQ(spec.windowStart, 500u);
    EXPECT_EQ(spec.windowEnd, 1500u);
}

TEST(FaultConfigDeathTest, RejectsBadFraction)
{
    Config cfg;
    cfg.set("fault.hard_fraction", "1.5");
    EXPECT_EXIT(faultSpecFromConfig(cfg, 0, 10),
                ::testing::ExitedWithCode(1), "hard_fraction");
}

TEST(FaultConfigDeathTest, RejectsEmptyWindow)
{
    Config cfg;
    cfg.set("fault.window_start", "10");
    cfg.set("fault.window_end", "10");
    EXPECT_EXIT(faultSpecFromConfig(cfg, 0, 10),
                ::testing::ExitedWithCode(1), "window");
}

TEST(FaultKindNames, AllNamed)
{
    EXPECT_STREQ(faultKindName(FaultKind::TransientFlip), "transient-flip");
    EXPECT_STREQ(faultKindName(FaultKind::HardFault), "hard-fault");
    EXPECT_STREQ(faultKindName(FaultKind::TileOutage), "tile-outage");
}

} // namespace
} // namespace molcache
