/**
 * @file
 * Fault-path regression tests for the guardian's capacity floor: hard
 * decommissioning drops a region below its floor while the cluster pool
 * is empty — the resizer's one-shot pendingReacquire path gives up, and
 * the guardian's standing restoreFloor guarantee must pull the region
 * back above the floor as soon as a neighbour releases capacity.
 */

#include <gtest/gtest.h>

#include "core/guardian.hpp"
#include "core/molecular_cache.hpp"
#include "core/sim_access.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

MolecularCacheParams
guardedParams()
{
    MolecularCacheParams p;
    p.moleculeSize = 8_KiB;
    p.moleculesPerTile = 8;
    p.tilesPerCluster = 2;
    p.clusters = 1;
    // FullTile: both applications start owning their whole home tile, so
    // the cluster pool is empty at fault time by construction.
    p.initialAllocation = InitialAllocation::FullTile;
    p.resizePeriod = 200;
    p.minResizePeriod = 50;
    p.maxResizePeriod = 2000;
    p.minIntervalSample = 50;
    p.guardian.enabled = true;
    p.guardian.floorMolecules = 3;
    return p;
}

Addr
addrFor(Asid asid, u32 n)
{
    return (static_cast<Addr>(asid.value()) << 34) +
           static_cast<Addr>(n) * 64;
}

void
warm(MolecularCache &cache, Asid asid, u32 refs, u32 footprint)
{
    Pcg32 rng(99);
    for (u32 i = 0; i < refs; ++i) {
        cache.access({addrFor(asid, rng.below(footprint)), asid,
                      rng.chance(0.25) ? AccessType::Write
                                       : AccessType::Read});
    }
}

TEST(GuardianFault, FloorRestoredAfterDecommissionUnderEmptyPool)
{
    MolecularCache cache(guardedParams());
    const u32 floor = cache.params().guardian.floorMolecules;
    // The donor overachieves its lenient goal and will shed capacity;
    // the victim loses its tile to hard faults.
    cache.registerApplication(Asid{0}, 0.4, ClusterId{0}, 0, 1);
    cache.registerApplication(Asid{1}, 0.1, ClusterId{0}, 1, 1);
    ASSERT_EQ(cache.freeMolecules(), 0u);

    // Decommission the victim's molecules down to a single survivor —
    // well below the floor — while the pool has nothing to re-grant.
    const Region &victim = cache.region(Asid{1});
    while (victim.size() > 1) {
        ASSERT_TRUE(SimAccess{cache}.decommissionMolecule(victim.rows()[0][0]));
    }
    ASSERT_LT(victim.size(), floor);
    EXPECT_TRUE(victim.recovering);
    EXPECT_GT(victim.moleculesLost, 0u);

    // Only the donor runs traffic: the victim's floor restoration must
    // not depend on the squeezed application making progress itself
    // (restoreFloor runs even for idle regions, every resize cycle).
    warm(cache, Asid{0}, 12000, 256);

    EXPECT_GE(victim.size(), floor)
        << "floor not restored after donor released capacity";
    // The one-shot pendingReacquire path abandoned against the empty
    // pool; the grants that rebuilt the region are the guardian's.
    EXPECT_EQ(victim.pendingReacquire, 0u);
    ASSERT_NE(cache.guardian(), nullptr);
    EXPECT_GT(cache.guardian()->telemetry(Asid{1}).floorRestoreGrants, 0u);
    EXPECT_GT(cache.guardian()->summary().floorRestoreGrants, 0u);
}

TEST(GuardianFault, RegisteredRegionsStartAtTheFloor)
{
    MolecularCacheParams p = guardedParams();
    // A tiny initial allocation below the floor: the first resize cycle
    // must top the region up before any Algorithm-1 decision runs.
    p.initialAllocation = InitialAllocation::Small;
    p.initialMolecules = 1;
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.1);
    ASSERT_LT(cache.region(Asid{0}).size(),
              p.guardian.floorMolecules);

    warm(cache, Asid{0}, 1000, 512);
    EXPECT_GE(cache.region(Asid{0}).size(), p.guardian.floorMolecules);
}

} // namespace
} // namespace molcache
