#include "mem/filter.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

std::unique_ptr<AccessSource>
source(std::vector<MemAccess> v)
{
    return std::make_unique<VectorSource>(std::move(v));
}

MemAccess
read(Addr a, u16 asid = 0)
{
    return {a, Asid{asid}, AccessType::Read};
}

MemAccess
write(Addr a, u16 asid = 0)
{
    return {a, Asid{asid}, AccessType::Write};
}

L1Params
tinyL1()
{
    L1Params p;
    p.sizeBytes = 4_KiB; // 64 lines, 16 sets x 4 ways
    p.associativity = 4;
    p.lineSize = 64;
    return p;
}

TEST(L1Filter, ForwardsOnlyMisses)
{
    // Same line four times: one compulsory miss reaches L2.
    L1FilterSource f(source({read(0x100), read(0x100), read(0x120),
                             read(0x100)}),
                     tinyL1());
    auto a = f.next();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->addr, 0x100u);
    EXPECT_FALSE(f.next().has_value());
    EXPECT_EQ(f.consumed(), 4u);
    EXPECT_EQ(f.forwardedMisses(), 1u);
    EXPECT_DOUBLE_EQ(f.l1MissRate(), 0.25);
}

TEST(L1Filter, DistinctLinesAllMiss)
{
    L1FilterSource f(source({read(0x0), read(0x40), read(0x80)}), tinyL1());
    u64 n = 0;
    while (f.next())
        ++n;
    EXPECT_EQ(n, 3u);
    EXPECT_DOUBLE_EQ(f.l1MissRate(), 1.0);
}

TEST(L1Filter, WriteMissBecomesReadAllocate)
{
    L1FilterSource f(source({write(0x200)}), tinyL1());
    const auto a = f.next();
    ASSERT_TRUE(a.has_value());
    EXPECT_FALSE(a->isWrite()) << "demand fill reaches L2 as a read";
}

TEST(L1Filter, DirtyEvictionEmitsWriteback)
{
    // 16 sets: addresses 4KiB apart share set 0.  Fill 4 ways dirty,
    // then a fifth conflicting read displaces the LRU dirty line.
    const u64 span = 4 * 1024;
    std::vector<MemAccess> refs;
    for (u32 i = 0; i < 4; ++i)
        refs.push_back(write(i * span));
    refs.push_back(read(4 * span));
    L1FilterSource f(source(std::move(refs)), tinyL1());

    std::vector<MemAccess> out;
    while (auto a = f.next())
        out.push_back(*a);
    // 4 write-allocates + 1 demand read + 1 writeback of line 0.
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out[4].addr, 4 * span);
    EXPECT_FALSE(out[4].isWrite());
    EXPECT_EQ(out[5].addr, 0u);
    EXPECT_TRUE(out[5].isWrite()) << "writeback reaches L2 as a write";
    EXPECT_EQ(f.forwardedWritebacks(), 1u);
}

TEST(L1Filter, PerAsidPrivateCaches)
{
    // The same address from two ASIDs misses twice: L1s are private.
    L1FilterSource f(source({read(0x100, 1), read(0x100, 2),
                             read(0x100, 1), read(0x100, 2)}),
                     tinyL1());
    u64 n = 0;
    while (f.next())
        ++n;
    EXPECT_EQ(n, 2u);
}

TEST(L1Filter, ReducesTrafficOnLocalWorkload)
{
    // A zipf-hot stream should be heavily filtered.
    std::vector<MemAccess> refs;
    Pcg32 rng(3);
    for (u32 i = 0; i < 20000; ++i)
        refs.push_back(read((rng.below(32)) * 64)); // 32 hot lines
    L1FilterSource f(source(std::move(refs)), tinyL1());
    u64 forwarded = 0;
    while (f.next())
        ++forwarded;
    EXPECT_LT(forwarded, 100u); // compulsory only
    EXPECT_LT(f.l1MissRate(), 0.01);
}

} // namespace
} // namespace molcache
