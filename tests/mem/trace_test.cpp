#include "mem/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace molcache {
namespace {

std::vector<MemAccess>
sample()
{
    return {
        {0x1000, Asid{0}, AccessType::Read},
        {0xdeadbeef000, Asid{3}, AccessType::Write},
        {0xffffffffffff, Asid{65534}, AccessType::Read},
        {0, Asid{1}, AccessType::Write},
    };
}

class TraceRoundTrip : public ::testing::TestWithParam<TraceFormat>
{
  protected:
    std::string
    path() const
    {
        return ::testing::TempDir() + "/molcache_trace_" +
               (GetParam() == TraceFormat::Binary ? "bin" : "txt") + ".trc";
    }

    void TearDown() override { std::remove(path().c_str()); }
};

TEST_P(TraceRoundTrip, PreservesRecords)
{
    const auto trace = sample();
    writeTrace(path(), trace, GetParam());
    const auto back = readTrace(path());
    ASSERT_EQ(back.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(back[i], trace[i]) << "record " << i;
}

TEST_P(TraceRoundTrip, StreamingReaderMatches)
{
    const auto trace = sample();
    writeTrace(path(), trace, GetParam());
    TraceReader reader(path());
    EXPECT_EQ(reader.format(), GetParam());
    size_t i = 0;
    while (auto a = reader.next()) {
        ASSERT_LT(i, trace.size());
        EXPECT_EQ(*a, trace[i]);
        ++i;
    }
    EXPECT_EQ(i, trace.size());
}

INSTANTIATE_TEST_SUITE_P(BothFormats, TraceRoundTrip,
                         ::testing::Values(TraceFormat::Binary,
                                           TraceFormat::Text));

TEST(Trace, BinaryHeaderCount)
{
    const std::string path = ::testing::TempDir() + "/molcache_hdr.trc";
    writeTrace(path, sample(), TraceFormat::Binary);
    TraceReader reader(path);
    EXPECT_EQ(reader.declaredRecords(), sample().size());
    std::remove(path.c_str());
}

TEST(Trace, EmptyTrace)
{
    const std::string path = ::testing::TempDir() + "/molcache_empty.trc";
    writeTrace(path, {}, TraceFormat::Binary);
    const auto back = readTrace(path);
    EXPECT_TRUE(back.empty());
    std::remove(path.c_str());
}

TEST(Trace, TextCommentsSkipped)
{
    const std::string path = ::testing::TempDir() + "/molcache_cmt.trc";
    {
        std::ofstream out(path);
        out << "# header comment\n"
            << "R 1000 2\n"
            << "\n"
            << "W ff 3\n";
    }
    const auto back = readTrace(path);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].addr, 0x1000u);
    EXPECT_EQ(back[0].asid, Asid{2});
    EXPECT_FALSE(back[0].isWrite());
    EXPECT_EQ(back[1].addr, 0xffu);
    EXPECT_TRUE(back[1].isWrite());
    std::remove(path.c_str());
}

TEST(Trace, ClassicDineroFormatAccepted)
{
    // "din" lines: <label> <hexaddr>, label 0=read 1=write 2=ifetch.
    const std::string path = ::testing::TempDir() + "/molcache_din.trc";
    {
        std::ofstream out(path);
        out << "0 1000\n"
            << "1 2abc\n"
            << "2 4000\n";
    }
    const auto back = readTrace(path);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[0].addr, 0x1000u);
    EXPECT_FALSE(back[0].isWrite());
    EXPECT_EQ(back[1].addr, 0x2abcu);
    EXPECT_TRUE(back[1].isWrite());
    EXPECT_EQ(back[2].addr, 0x4000u);
    EXPECT_FALSE(back[2].isWrite()); // ifetch arrives as a read
    for (const auto &a : back)
        EXPECT_EQ(a.asid, Asid{0}); // din carries no process id
    std::remove(path.c_str());
}

TEST(Trace, MixedNativeAndDineroLines)
{
    const std::string path = ::testing::TempDir() + "/molcache_mix.trc";
    {
        std::ofstream out(path);
        out << "R 1000 5\n"
            << "1 2000\n";
    }
    const auto back = readTrace(path);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].asid, Asid{5});
    EXPECT_EQ(back[1].asid, Asid{0});
    EXPECT_TRUE(back[1].isWrite());
    std::remove(path.c_str());
}

TEST(TraceDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceReader("/nonexistent/nope.trc"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceDeath, MalformedTextIsFatal)
{
    const std::string path = ::testing::TempDir() + "/molcache_bad.trc";
    {
        std::ofstream out(path);
        out << "garbage line without structure\n";
    }
    TraceReader reader(path);
    EXPECT_EXIT(reader.next(), ::testing::ExitedWithCode(1), "malformed");
    std::remove(path.c_str());
}

TEST(TraceDeath, MalformedTextCarriesLineNumber)
{
    const std::string path = ::testing::TempDir() + "/molcache_line.trc";
    {
        std::ofstream out(path);
        out << "R 1000 0\n"
            << "# comment\n"
            << "not a record\n";
    }
    TraceReader reader(path);
    ASSERT_TRUE(reader.next());
    EXPECT_EXIT(reader.next(), ::testing::ExitedWithCode(1), ":3");
    std::remove(path.c_str());
}

TEST(Trace, NonStrictSkipsMalformedLines)
{
    const std::string path = ::testing::TempDir() + "/molcache_skip.trc";
    {
        std::ofstream out(path);
        out << "R 1000 1\n"
            << "not a record\n"
            << "W 2000 2\n";
    }
    TraceReader reader(path, /*strict=*/false);
    const auto a = reader.next();
    const auto b = reader.next();
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->addr, 0x1000u);
    EXPECT_EQ(b->addr, 0x2000u);
    EXPECT_FALSE(reader.next());
    EXPECT_EQ(reader.recordsRead(), 2u);
    EXPECT_EQ(reader.skippedLines(), 1u);
    std::remove(path.c_str());
}

TEST(TraceDeath, TruncatedBinaryBodyIsFatalWhenStrict)
{
    const std::string path = ::testing::TempDir() + "/molcache_tb.trc";
    writeTrace(path, sample(), TraceFormat::Binary);
    // Chop off the last record plus a few bytes: a partial record remains.
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        const auto size = static_cast<long>(in.tellg());
        std::vector<char> bytes(static_cast<size_t>(size) - 15);
        in.seekg(0);
        in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    TraceReader strict(path);
    EXPECT_EXIT(
        [&] {
            while (strict.next()) {
            }
        }(),
        ::testing::ExitedWithCode(1), "truncated");

    // Non-strict: recover the intact prefix and flag the truncation.
    TraceReader lax(path, /*strict=*/false);
    u64 n = 0;
    while (lax.next())
        ++n;
    EXPECT_EQ(n, sample().size() - 2);
    EXPECT_TRUE(lax.truncated());
    std::remove(path.c_str());
}

TEST(TraceDeath, DeclaredCountShortfallIsDetected)
{
    const std::string path = ::testing::TempDir() + "/molcache_short.trc";
    writeTrace(path, sample(), TraceFormat::Binary);
    // Remove exactly one whole record: every remaining record is intact,
    // so only the header count can reveal the loss.
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        const auto size = static_cast<long>(in.tellg());
        std::vector<char> bytes(static_cast<size_t>(size) - 11);
        in.seekg(0);
        in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    TraceReader strict(path);
    EXPECT_EQ(strict.declaredRecords(), sample().size());
    EXPECT_EXIT(
        [&] {
            while (strict.next()) {
            }
        }(),
        ::testing::ExitedWithCode(1), "declares");

    TraceReader lax(path, /*strict=*/false);
    u64 n = 0;
    while (lax.next())
        ++n;
    EXPECT_EQ(n, sample().size() - 1);
    EXPECT_TRUE(lax.truncated());
    std::remove(path.c_str());
}

TEST(Trace, WriterCountsRecords)
{
    const std::string path = ::testing::TempDir() + "/molcache_cnt.trc";
    {
        TraceWriter writer(path, TraceFormat::Binary);
        for (const auto &a : sample())
            writer.append(a);
        EXPECT_EQ(writer.recordsWritten(), sample().size());
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace molcache
