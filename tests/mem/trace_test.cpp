#include "mem/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace molcache {
namespace {

std::vector<MemAccess>
sample()
{
    return {
        {0x1000, 0, AccessType::Read},
        {0xdeadbeef000, 3, AccessType::Write},
        {0xffffffffffff, 65534, AccessType::Read},
        {0, 1, AccessType::Write},
    };
}

class TraceRoundTrip : public ::testing::TestWithParam<TraceFormat>
{
  protected:
    std::string
    path() const
    {
        return ::testing::TempDir() + "/molcache_trace_" +
               (GetParam() == TraceFormat::Binary ? "bin" : "txt") + ".trc";
    }

    void TearDown() override { std::remove(path().c_str()); }
};

TEST_P(TraceRoundTrip, PreservesRecords)
{
    const auto trace = sample();
    writeTrace(path(), trace, GetParam());
    const auto back = readTrace(path());
    ASSERT_EQ(back.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(back[i], trace[i]) << "record " << i;
}

TEST_P(TraceRoundTrip, StreamingReaderMatches)
{
    const auto trace = sample();
    writeTrace(path(), trace, GetParam());
    TraceReader reader(path());
    EXPECT_EQ(reader.format(), GetParam());
    size_t i = 0;
    while (auto a = reader.next()) {
        ASSERT_LT(i, trace.size());
        EXPECT_EQ(*a, trace[i]);
        ++i;
    }
    EXPECT_EQ(i, trace.size());
}

INSTANTIATE_TEST_SUITE_P(BothFormats, TraceRoundTrip,
                         ::testing::Values(TraceFormat::Binary,
                                           TraceFormat::Text));

TEST(Trace, BinaryHeaderCount)
{
    const std::string path = ::testing::TempDir() + "/molcache_hdr.trc";
    writeTrace(path, sample(), TraceFormat::Binary);
    TraceReader reader(path);
    EXPECT_EQ(reader.declaredRecords(), sample().size());
    std::remove(path.c_str());
}

TEST(Trace, EmptyTrace)
{
    const std::string path = ::testing::TempDir() + "/molcache_empty.trc";
    writeTrace(path, {}, TraceFormat::Binary);
    const auto back = readTrace(path);
    EXPECT_TRUE(back.empty());
    std::remove(path.c_str());
}

TEST(Trace, TextCommentsSkipped)
{
    const std::string path = ::testing::TempDir() + "/molcache_cmt.trc";
    {
        std::ofstream out(path);
        out << "# header comment\n"
            << "R 1000 2\n"
            << "\n"
            << "W ff 3\n";
    }
    const auto back = readTrace(path);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].addr, 0x1000u);
    EXPECT_EQ(back[0].asid, 2u);
    EXPECT_FALSE(back[0].isWrite());
    EXPECT_EQ(back[1].addr, 0xffu);
    EXPECT_TRUE(back[1].isWrite());
    std::remove(path.c_str());
}

TEST(Trace, ClassicDineroFormatAccepted)
{
    // "din" lines: <label> <hexaddr>, label 0=read 1=write 2=ifetch.
    const std::string path = ::testing::TempDir() + "/molcache_din.trc";
    {
        std::ofstream out(path);
        out << "0 1000\n"
            << "1 2abc\n"
            << "2 4000\n";
    }
    const auto back = readTrace(path);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[0].addr, 0x1000u);
    EXPECT_FALSE(back[0].isWrite());
    EXPECT_EQ(back[1].addr, 0x2abcu);
    EXPECT_TRUE(back[1].isWrite());
    EXPECT_EQ(back[2].addr, 0x4000u);
    EXPECT_FALSE(back[2].isWrite()); // ifetch arrives as a read
    for (const auto &a : back)
        EXPECT_EQ(a.asid, 0u); // din carries no process id
    std::remove(path.c_str());
}

TEST(Trace, MixedNativeAndDineroLines)
{
    const std::string path = ::testing::TempDir() + "/molcache_mix.trc";
    {
        std::ofstream out(path);
        out << "R 1000 5\n"
            << "1 2000\n";
    }
    const auto back = readTrace(path);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].asid, 5u);
    EXPECT_EQ(back[1].asid, 0u);
    EXPECT_TRUE(back[1].isWrite());
    std::remove(path.c_str());
}

TEST(TraceDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceReader("/nonexistent/nope.trc"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceDeath, MalformedTextIsFatal)
{
    const std::string path = ::testing::TempDir() + "/molcache_bad.trc";
    {
        std::ofstream out(path);
        out << "garbage line without structure\n";
    }
    TraceReader reader(path);
    EXPECT_EXIT(reader.next(), ::testing::ExitedWithCode(1), "malformed");
    std::remove(path.c_str());
}

TEST(Trace, WriterCountsRecords)
{
    const std::string path = ::testing::TempDir() + "/molcache_cnt.trc";
    {
        TraceWriter writer(path, TraceFormat::Binary);
        for (const auto &a : sample())
            writer.append(a);
        EXPECT_EQ(writer.recordsWritten(), sample().size());
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace molcache
