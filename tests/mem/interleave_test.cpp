#include "mem/interleave.hpp"

#include <gtest/gtest.h>

#include <map>

namespace molcache {
namespace {

std::unique_ptr<AccessSource>
constantSource(u16 asid, u64 n)
{
    std::vector<MemAccess> v(
        n, MemAccess{0x1000, Asid{asid}, AccessType::Read});
    return std::make_unique<VectorSource>(std::move(v));
}

std::map<Asid, u64>
drainCounts(AccessSource &src)
{
    std::map<Asid, u64> counts;
    while (auto a = src.next())
        ++counts[a->asid];
    return counts;
}

TEST(VectorSource, DrainsInOrder)
{
    std::vector<MemAccess> v = {{1, Asid{0}, AccessType::Read},
                                {2, Asid{0}, AccessType::Write}};
    VectorSource src(v);
    EXPECT_EQ(src.next()->addr, 1u);
    EXPECT_EQ(src.next()->addr, 2u);
    EXPECT_FALSE(src.next().has_value());
    EXPECT_FALSE(src.next().has_value()); // stays exhausted
}

TEST(Interleaver, RoundRobinAlternates)
{
    std::vector<std::unique_ptr<AccessSource>> sources;
    sources.push_back(constantSource(0, 3));
    sources.push_back(constantSource(1, 3));
    Interleaver mix(std::move(sources), MixPolicy::RoundRobin);
    std::vector<Asid> order;
    while (auto a = mix.next())
        order.push_back(a->asid);
    EXPECT_EQ(order, (std::vector<Asid>{Asid{0}, Asid{1}, Asid{0}, Asid{1},
                                    Asid{0}, Asid{1}}));
}

TEST(Interleaver, RoundRobinSkipsExhausted)
{
    std::vector<std::unique_ptr<AccessSource>> sources;
    sources.push_back(constantSource(0, 1));
    sources.push_back(constantSource(1, 4));
    Interleaver mix(std::move(sources), MixPolicy::RoundRobin);
    const auto counts = drainCounts(mix);
    EXPECT_EQ(counts.at(Asid{0}), 1u);
    EXPECT_EQ(counts.at(Asid{1}), 4u);
}

TEST(Interleaver, LimitStopsEarly)
{
    std::vector<std::unique_ptr<AccessSource>> sources;
    sources.push_back(constantSource(0, 100));
    Interleaver mix(std::move(sources), MixPolicy::RoundRobin, {}, 1, 10);
    u64 n = 0;
    while (mix.next())
        ++n;
    EXPECT_EQ(n, 10u);
    EXPECT_EQ(mix.produced(), 10u);
}

TEST(Interleaver, WeightedProportions)
{
    std::vector<std::unique_ptr<AccessSource>> sources;
    sources.push_back(constantSource(0, 100000));
    sources.push_back(constantSource(1, 100000));
    Interleaver mix(std::move(sources), MixPolicy::Weighted, {3.0, 1.0}, 1,
                    40000);
    const auto counts = drainCounts(mix);
    // 3:1 service ratio.
    EXPECT_NEAR(static_cast<double>(counts.at(Asid{0})), 30000.0, 300.0);
    EXPECT_NEAR(static_cast<double>(counts.at(Asid{1})), 10000.0, 300.0);
}

TEST(Interleaver, RandomRoughlyBalanced)
{
    std::vector<std::unique_ptr<AccessSource>> sources;
    for (u16 a = 0; a < 4; ++a)
        sources.push_back(constantSource(a, 100000));
    Interleaver mix(std::move(sources), MixPolicy::Random, {}, 99, 40000);
    const auto counts = drainCounts(mix);
    for (u16 a = 0; a < 4; ++a)
        EXPECT_NEAR(static_cast<double>(counts.at(Asid{a})), 10000.0,
                    600.0);
}

TEST(Interleaver, RandomDeterministicPerSeed)
{
    auto build = [](u64 seed) {
        std::vector<std::unique_ptr<AccessSource>> sources;
        sources.push_back(constantSource(0, 50));
        sources.push_back(constantSource(1, 50));
        return std::make_unique<Interleaver>(std::move(sources),
                                             MixPolicy::Random,
                                             std::vector<double>{}, seed);
    };
    auto a = build(5), b = build(5);
    while (true) {
        const auto x = a->next(), y = b->next();
        EXPECT_EQ(x.has_value(), y.has_value());
        if (!x)
            break;
        EXPECT_EQ(x->asid, y->asid);
    }
}

TEST(InterleaverDeath, WeightedNeedsMatchingWeights)
{
    std::vector<std::unique_ptr<AccessSource>> sources;
    sources.push_back(constantSource(0, 1));
    EXPECT_EXIT(Interleaver(std::move(sources), MixPolicy::Weighted,
                            {1.0, 2.0}),
                ::testing::ExitedWithCode(1), "one weight per source");
}

} // namespace
} // namespace molcache
