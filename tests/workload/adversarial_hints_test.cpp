/**
 * @file
 * Phase-hint emission tests (workload/adversarial.hpp, HintPolicy):
 * the side-band channel's determinism, its degradation knobs (jitter,
 * magnitude, inverted sign, dropout), and the contract that emitting or
 * suppressing hints never changes the address stream.
 */

#include "workload/adversarial.hpp"

#include <cstdlib>

#include <gtest/gtest.h>

#include "util/config.hpp"

namespace molcache {
namespace {

constexpr u64 kRefs = 200'000;
constexpr u64 kPhaseLength = 40'000; // PhaseFlip phase spacing

/** Run @p gen to exhaustion (or @p refs) collecting every hint. */
std::vector<PhaseHint>
collectHints(AdversaryGenerator &gen, u64 refs)
{
    std::vector<PhaseHint> out;
    PhaseHint buf[8];
    for (u64 i = 0; i < refs; ++i) {
        if (!gen.next())
            break;
        const size_t n = gen.drainHints(buf, 8);
        out.insert(out.end(), buf, buf + n);
    }
    return out;
}

HintPolicy
policy()
{
    HintPolicy p;
    p.enabled = true;
    p.leadAccesses = 12'000;
    p.confidence = 0.9;
    return p;
}

TEST(AdversarialHints, PhaseFlipEmitsOnePerBoundaryDeterministically)
{
    AdversaryGenerator a(AdversaryKind::PhaseFlip, Asid{0}, kRefs, 1,
                         policy());
    const std::vector<PhaseHint> hints = collectHints(a, kRefs);
    // Boundaries at 40k, 80k, 120k, 160k, 200k; the last one's emission
    // point (188k) is still inside the run.
    EXPECT_EQ(hints.size(), kRefs / kPhaseLength);
    for (const PhaseHint &h : hints) {
        EXPECT_EQ(h.asid, Asid{0});
        EXPECT_LE(h.leadAccesses, policy().leadAccesses);
        EXPECT_DOUBLE_EQ(h.confidence, 0.9);
    }
    // Alternating promised footprints: cold (1 MiB) then hot (48 KiB).
    EXPECT_EQ(hints[0].predictedFootprintBytes, 1024u * 1024u);
    EXPECT_EQ(hints[1].predictedFootprintBytes, 48u * 1024u);

    // Same seed, same policy => identical schedule.
    AdversaryGenerator b(AdversaryKind::PhaseFlip, Asid{0}, kRefs, 1,
                         policy());
    const std::vector<PhaseHint> again = collectHints(b, kRefs);
    ASSERT_EQ(again.size(), hints.size());
    for (size_t i = 0; i < hints.size(); ++i) {
        EXPECT_EQ(again[i].leadAccesses, hints[i].leadAccesses);
        EXPECT_EQ(again[i].predictedFootprintBytes,
                  hints[i].predictedFootprintBytes);
    }
}

TEST(AdversarialHints, AddressStreamIdenticalWithHintsOnDegradedOrOff)
{
    AdversaryGenerator off(AdversaryKind::PhaseFlip, Asid{0}, kRefs, 7);
    AdversaryGenerator on(AdversaryKind::PhaseFlip, Asid{0}, kRefs, 7,
                          policy());
    HintPolicy degraded = policy();
    degraded.jitterAccesses = 5'000;
    degraded.invertPhase = true;
    degraded.dropProbability = 0.5;
    AdversaryGenerator bad(AdversaryKind::PhaseFlip, Asid{0}, kRefs, 7,
                           degraded);
    PhaseHint buf[8];
    for (u64 i = 0; i < kRefs; ++i) {
        const auto x = off.next();
        const auto y = on.next();
        const auto z = bad.next();
        ASSERT_TRUE(x && y && z);
        EXPECT_EQ(x->addr, y->addr);
        EXPECT_EQ(x->addr, z->addr);
        EXPECT_EQ(x->type, y->type);
        EXPECT_EQ(x->type, z->type);
        while (on.drainHints(buf, 8) > 0) {
        }
        while (bad.drainHints(buf, 8) > 0) {
        }
    }
}

TEST(AdversarialHints, InvertPhasePromisesTheDepartingFootprint)
{
    HintPolicy lying = policy();
    lying.invertPhase = true;
    AdversaryGenerator honest(AdversaryKind::PhaseFlip, Asid{0}, kRefs,
                              1, policy());
    AdversaryGenerator liar(AdversaryKind::PhaseFlip, Asid{0}, kRefs, 1,
                            lying);
    const auto truth = collectHints(honest, kRefs);
    const auto lies = collectHints(liar, kRefs);
    ASSERT_EQ(truth.size(), lies.size());
    for (size_t i = 0; i < truth.size(); ++i) {
        // The liar promises the phase being left, so its footprints are
        // exactly one phase out of step with the honest schedule.
        EXPECT_NE(lies[i].predictedFootprintBytes,
                  truth[i].predictedFootprintBytes);
        if (i > 0)
            EXPECT_EQ(lies[i].predictedFootprintBytes,
                      truth[i - 1].predictedFootprintBytes);
    }
}

TEST(AdversarialHints, MagnitudeScaleDistortsThePromise)
{
    HintPolicy inflated = policy();
    inflated.magnitudeScale = 2.0;
    AdversaryGenerator honest(AdversaryKind::PhaseFlip, Asid{0}, kRefs,
                              1, policy());
    AdversaryGenerator big(AdversaryKind::PhaseFlip, Asid{0}, kRefs, 1,
                           inflated);
    const auto truth = collectHints(honest, kRefs);
    const auto scaled = collectHints(big, kRefs);
    ASSERT_EQ(truth.size(), scaled.size());
    for (size_t i = 0; i < truth.size(); ++i)
        EXPECT_EQ(scaled[i].predictedFootprintBytes,
                  2 * truth[i].predictedFootprintBytes);
}

TEST(AdversarialHints, DropoutSilentlyThinsTheSchedule)
{
    HintPolicy mute = policy();
    mute.dropProbability = 1.0;
    AdversaryGenerator gen(AdversaryKind::PhaseFlip, Asid{0}, kRefs, 1,
                           mute);
    EXPECT_TRUE(collectHints(gen, kRefs).empty());

    // Partial dropout thins the schedule deterministically; the hints
    // that do survive are indistinguishable from a reliable tenant's
    // (no jitter here, so the timing stays exact).
    HintPolicy flaky = policy();
    flaky.dropProbability = 0.5;
    AdversaryGenerator some(AdversaryKind::PhaseFlip, Asid{0}, kRefs, 1,
                            flaky);
    const auto thinned = collectHints(some, kRefs);
    const size_t boundaries = kRefs / kPhaseLength;
    EXPECT_LT(thinned.size(), boundaries);
    for (const PhaseHint &h : thinned) {
        EXPECT_EQ(h.leadAccesses, policy().leadAccesses);
        EXPECT_TRUE(h.predictedFootprintBytes == 48u * 1024u ||
                    h.predictedFootprintBytes == 1024u * 1024u);
    }

    AdversaryGenerator again(AdversaryKind::PhaseFlip, Asid{0}, kRefs,
                             1, flaky);
    EXPECT_EQ(collectHints(again, kRefs).size(), thinned.size());
}

TEST(AdversarialHints, JitterMovesTheEmissionPointOnly)
{
    HintPolicy jittered = policy();
    jittered.jitterAccesses = 5'000;
    AdversaryGenerator crisp(AdversaryKind::PhaseFlip, Asid{0}, kRefs, 1,
                             policy());
    AdversaryGenerator noisy(AdversaryKind::PhaseFlip, Asid{0}, kRefs, 1,
                             jittered);
    const auto exact = collectHints(crisp, kRefs);
    const auto moved = collectHints(noisy, kRefs);
    ASSERT_EQ(exact.size(), moved.size());
    bool any_shift = false;
    for (size_t i = 0; i < exact.size(); ++i) {
        // The promise itself is untouched; only the timing wobbles
        // within the configured bound.
        EXPECT_EQ(moved[i].predictedFootprintBytes,
                  exact[i].predictedFootprintBytes);
        const i64 lead_delta =
            static_cast<i64>(moved[i].leadAccesses) -
            static_cast<i64>(exact[i].leadAccesses);
        EXPECT_LE(std::llabs(lead_delta),
                  static_cast<i64>(jittered.jitterAccesses));
        any_shift = any_shift || lead_delta != 0;
    }
    EXPECT_TRUE(any_shift);
}

TEST(AdversarialHints, UnstructuredKindsNeverEmit)
{
    AdversaryGenerator hog(AdversaryKind::Hog, Asid{0}, kRefs, 1,
                           policy());
    AdversaryGenerator steady(AdversaryKind::Steady, Asid{1}, kRefs, 1,
                              policy());
    EXPECT_TRUE(collectHints(hog, kRefs).empty());
    EXPECT_TRUE(collectHints(steady, kRefs).empty());
}

TEST(AdversarialHints, HintsFlowThroughTheMergedSource)
{
    const std::vector<AdversaryKind> mix = {AdversaryKind::PhaseFlip,
                                            AdversaryKind::Hog};
    std::vector<HintPolicy> hints(mix.size());
    hints[0] = policy();
    auto source = makeAdversarialSource(mix, hints, kRefs, 1);
    PhaseHint buf[8];
    size_t seen = 0;
    while (source->next()) {
        for (size_t n = source->drainHints(buf, 8); n > 0;) {
            const PhaseHint &h = buf[--n];
            EXPECT_EQ(h.asid, Asid{0}); // only the phase-flipper hints
            ++seen;
        }
    }
    EXPECT_GT(seen, 0u);
}

TEST(AdversarialHints, PolicyFromConfigReadsTheWorkloadHintKeys)
{
    const Config cfg = Config::fromTokens(
        {"workload.hint.enabled=1", "workload.hint.lead=9000",
         "workload.hint.jitter=500", "workload.hint.magnitude=1.5",
         "workload.hint.invert=1", "workload.hint.drop=0.25",
         "workload.hint.confidence=0.8"});
    const HintPolicy p = hintPolicyFromConfig(cfg);
    EXPECT_TRUE(p.enabled);
    EXPECT_EQ(p.leadAccesses, 9000u);
    EXPECT_EQ(p.jitterAccesses, 500u);
    EXPECT_DOUBLE_EQ(p.magnitudeScale, 1.5);
    EXPECT_TRUE(p.invertPhase);
    EXPECT_DOUBLE_EQ(p.dropProbability, 0.25);
    EXPECT_DOUBLE_EQ(p.confidence, 0.8);

    // Defaults survive an empty config.
    const HintPolicy d = hintPolicyFromConfig(Config{});
    EXPECT_FALSE(d.enabled);
    EXPECT_EQ(d.leadAccesses, 12'000u);
}

} // namespace
} // namespace molcache
