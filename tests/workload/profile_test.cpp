#include "workload/profile.hpp"

#include <gtest/gtest.h>

#include "workload/profiles.hpp"

namespace molcache {
namespace {

TEST(Profile, ApplicationWindowsDisjoint)
{
    // 16 GiB windows: consecutive ASIDs must never overlap even with
    // multi-MiB component layouts.
    for (u16 a = 0; a < 16; ++a)
        EXPECT_GE(applicationBase(Asid{static_cast<u16>(a + 1)}) -
                      applicationBase(Asid{a}),
                  1ull << 34);
}

TEST(Profile, BuildStreamSingleComponent)
{
    BenchmarkProfile p;
    p.name = "single";
    StreamSpec spec;
    spec.kind = StreamSpec::Kind::Sequential;
    spec.footprint = 1024;
    spec.stride = 64;
    p.components = {spec};
    auto stream = buildStream(p, 0x1000);
    Pcg32 rng(1);
    EXPECT_EQ(stream->next(rng), 0x1000u);
}

TEST(Profile, ComponentsDoNotOverlap)
{
    BenchmarkProfile p;
    p.name = "two";
    StreamSpec a;
    a.kind = StreamSpec::Kind::Sequential;
    a.footprint = 1 << 20;
    StreamSpec b;
    b.kind = StreamSpec::Kind::Sequential;
    b.footprint = 1 << 20;
    p.components = {a, b};
    auto stream = buildStream(p, 0);
    Pcg32 rng(1);
    // Drain a while: addresses must fall in two disjoint megabyte bands.
    Addr max_low = 0, min_high = kInvalidAddr;
    for (int i = 0; i < 1000; ++i) {
        const Addr addr = stream->next(rng);
        if (addr < (1u << 20))
            max_low = std::max(max_low, addr);
        else
            min_high = std::min(min_high, addr);
    }
    EXPECT_LT(max_low, 1u << 20);
    EXPECT_GE(min_high, 2u << 20); // 1 MiB guard gap honoured
}

TEST(Profiles, RegistryComplete)
{
    const auto names = profileNames();
    EXPECT_EQ(names.size(), 15u);
    for (const auto &n : spec4Names())
        EXPECT_TRUE(hasProfile(n)) << n;
    for (const auto &n : mixed12Names())
        EXPECT_TRUE(hasProfile(n)) << n;
}

TEST(Profiles, Spec4AndMixed12Sizes)
{
    EXPECT_EQ(spec4Names().size(), 4u);
    EXPECT_EQ(mixed12Names().size(), 12u);
}

TEST(Profiles, AllProfilesWellFormed)
{
    for (const auto &name : profileNames()) {
        const BenchmarkProfile &p = profileByName(name);
        EXPECT_EQ(p.name, name);
        EXPECT_FALSE(p.components.empty()) << name;
        EXPECT_FALSE(p.description.empty()) << name;
        EXPECT_GE(p.writeFraction, 0.0) << name;
        EXPECT_LE(p.writeFraction, 1.0) << name;
        for (const auto &c : p.components) {
            EXPECT_GT(c.weight, 0.0) << name;
            EXPECT_GE(c.footprint, 64u) << name;
        }
        // Every profile must build into a usable stream.
        auto stream = buildStream(p, applicationBase(Asid{0}));
        Pcg32 rng(1);
        for (int i = 0; i < 100; ++i)
            EXPECT_GE(stream->next(rng), applicationBase(Asid{0})) << name;
    }
}

TEST(ProfilesDeath, UnknownProfileIsFatal)
{
    EXPECT_EXIT(profileByName("not-a-benchmark"),
                ::testing::ExitedWithCode(1), "unknown benchmark profile");
}

} // namespace
} // namespace molcache
