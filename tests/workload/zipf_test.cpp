#include "workload/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace molcache {
namespace {

TEST(Zipf, UniformWhenAlphaZero)
{
    ZipfSampler zipf(4, 0.0);
    for (u32 r = 0; r < 4; ++r)
        EXPECT_NEAR(zipf.probability(r), 0.25, 1e-12);
}

TEST(Zipf, ProbabilitiesSumToOne)
{
    ZipfSampler zipf(1000, 0.8);
    double sum = 0.0;
    for (u32 r = 0; r < zipf.ranks(); ++r)
        sum += zipf.probability(r);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, MonotoneDecreasing)
{
    ZipfSampler zipf(100, 1.0);
    for (u32 r = 1; r < 100; ++r)
        EXPECT_GE(zipf.probability(r - 1), zipf.probability(r));
}

TEST(Zipf, ClassicRatios)
{
    // alpha=1: p(rank0)/p(rank1) == 2, p(rank0)/p(rank3) == 4.
    ZipfSampler zipf(100, 1.0);
    EXPECT_NEAR(zipf.probability(0) / zipf.probability(1), 2.0, 1e-9);
    EXPECT_NEAR(zipf.probability(0) / zipf.probability(3), 4.0, 1e-9);
}

TEST(Zipf, SampleMatchesDistribution)
{
    ZipfSampler zipf(16, 1.2);
    Pcg32 rng(77);
    std::vector<u64> counts(16, 0);
    constexpr u64 kDraws = 200000;
    for (u64 i = 0; i < kDraws; ++i)
        ++counts[zipf.sample(rng)];
    for (u32 r = 0; r < 16; ++r) {
        const double expected = zipf.probability(r) * kDraws;
        EXPECT_NEAR(static_cast<double>(counts[r]), expected,
                    5 * std::sqrt(expected) + 30)
            << "rank " << r;
    }
}

TEST(Zipf, SingleRank)
{
    ZipfSampler zipf(1, 2.0);
    Pcg32 rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
    EXPECT_DOUBLE_EQ(zipf.probability(0), 1.0);
}

TEST(Zipf, SamplesAlwaysInRange)
{
    ZipfSampler zipf(37, 0.6);
    Pcg32 rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.sample(rng), 37u);
}

} // namespace
} // namespace molcache
