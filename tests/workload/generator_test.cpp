#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <map>

#include "workload/profiles.hpp"

namespace molcache {
namespace {

TEST(Generator, ProducesExactlyLimit)
{
    TraceGenerator gen(profileByName("ammp"), Asid{0}, 1000, 1);
    u64 n = 0;
    while (gen.next())
        ++n;
    EXPECT_EQ(n, 1000u);
    EXPECT_EQ(gen.produced(), 1000u);
}

TEST(Generator, StampsAsid)
{
    TraceGenerator gen(profileByName("art"), Asid{7}, 100, 1);
    while (auto a = gen.next())
        EXPECT_EQ(a->asid, Asid{7});
}

TEST(Generator, DeterministicPerSeed)
{
    const auto a = generateTrace(profileByName("parser"), Asid{0}, 500, 42);
    const auto b = generateTrace(profileByName("parser"), Asid{0}, 500, 42);
    EXPECT_EQ(a, b);
}

TEST(Generator, DifferentSeedsDiffer)
{
    const auto a = generateTrace(profileByName("parser"), Asid{0}, 500, 1);
    const auto b = generateTrace(profileByName("parser"), Asid{0}, 500, 2);
    EXPECT_NE(a, b);
}

TEST(Generator, DifferentAsidsUseDifferentWindows)
{
    const auto a = generateTrace(profileByName("ammp"), Asid{0}, 200, 1);
    const auto b = generateTrace(profileByName("ammp"), Asid{1}, 200, 1);
    for (const auto &acc : a)
        EXPECT_LT(acc.addr, applicationBase(Asid{1}));
    for (const auto &acc : b)
        EXPECT_GE(acc.addr, applicationBase(Asid{1}));
}

TEST(Generator, WriteFractionApproximatelyHonoured)
{
    const auto &profile = profileByName("mcf"); // writeFraction 0.25
    const auto trace = generateTrace(profile, Asid{0}, 50000, 3);
    u64 writes = 0;
    for (const auto &a : trace)
        writes += a.isWrite() ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(writes) / trace.size(),
                profile.writeFraction, 0.02);
}

TEST(MultiProgram, InterleavesAllApps)
{
    auto src = makeMultiProgramSource({"art", "ammp"}, 1000);
    std::map<Asid, u64> counts;
    while (auto a = src->next())
        ++counts[a->asid];
    EXPECT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[Asid{0}], 500u);
    EXPECT_EQ(counts[Asid{1}], 500u);
}

TEST(MultiProgram, TotalReferenceBudget)
{
    auto src = makeMultiProgramSource(spec4Names(), 4004);
    u64 n = 0;
    while (src->next())
        ++n;
    EXPECT_EQ(n, 4004u);
}

} // namespace
} // namespace molcache
