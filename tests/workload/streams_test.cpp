#include "workload/streams.hpp"

#include <gtest/gtest.h>

#include <set>

namespace molcache {
namespace {

TEST(SequentialStream, WrapsAtFootprint)
{
    SequentialStream s(0x1000, 256, 64);
    Pcg32 rng(1);
    EXPECT_EQ(s.next(rng), 0x1000u);
    EXPECT_EQ(s.next(rng), 0x1040u);
    EXPECT_EQ(s.next(rng), 0x1080u);
    EXPECT_EQ(s.next(rng), 0x10c0u);
    EXPECT_EQ(s.next(rng), 0x1000u); // wrapped
}

TEST(StridedStream, WalkersInterleave)
{
    // 2 walkers, 128B each, stride 64, gap 128.
    StridedStream s(0, 2, 128, 64, 128);
    Pcg32 rng(1);
    EXPECT_EQ(s.next(rng), 0u);    // walker 0
    EXPECT_EQ(s.next(rng), 128u);  // walker 1
    EXPECT_EQ(s.next(rng), 64u);   // walker 0 advanced
    EXPECT_EQ(s.next(rng), 192u);  // walker 1 advanced
    EXPECT_EQ(s.next(rng), 0u);    // walker 0 wrapped
}

TEST(PointerChaseStream, StaysInFootprint)
{
    PointerChaseStream s(0x10000, 4096, 64);
    Pcg32 rng(5);
    for (int i = 0; i < 1000; ++i) {
        const Addr a = s.next(rng);
        EXPECT_GE(a, 0x10000u);
        EXPECT_LT(a, 0x10000u + 4096u);
        EXPECT_EQ(a % 64, 0u); // line aligned
    }
}

TEST(PointerChaseStream, CoversManyLines)
{
    PointerChaseStream s(0, 64 * 64, 64);
    Pcg32 rng(5);
    std::set<Addr> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(s.next(rng));
    EXPECT_GT(seen.size(), 55u); // nearly all 64 lines touched
}

TEST(WorkingSetStream, StaysInFootprintAndAligned)
{
    WorkingSetStream s(0x100000, 64 * 1024, 0.8, 64);
    Pcg32 rng(9);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = s.next(rng);
        EXPECT_GE(a, 0x100000u);
        EXPECT_LT(a, 0x100000u + 64 * 1024u);
        EXPECT_EQ(a % 64, 0u);
    }
}

TEST(WorkingSetStream, SkewConcentratesTraffic)
{
    WorkingSetStream s(0, 1024 * 64, 1.2, 64);
    Pcg32 rng(11);
    std::map<Addr, u64> counts;
    for (int i = 0; i < 50000; ++i)
        ++counts[s.next(rng)];
    // The most popular line should see far more than the mean (≈48).
    u64 max_count = 0;
    for (const auto &[a, c] : counts)
        max_count = std::max(max_count, c);
    EXPECT_GT(max_count, 2000u);
}

TEST(MixtureStream, RespectsWeights)
{
    std::vector<MixtureStream::Component> parts;
    parts.push_back({std::make_unique<SequentialStream>(0, 1024, 64), 9.0});
    parts.push_back(
        {std::make_unique<SequentialStream>(1 << 20, 1024, 64), 1.0});
    MixtureStream mix(std::move(parts));
    Pcg32 rng(13);
    u64 low = 0, high = 0;
    for (int i = 0; i < 20000; ++i) {
        if (mix.next(rng) < (1u << 20))
            ++low;
        else
            ++high;
    }
    EXPECT_NEAR(static_cast<double>(low), 18000.0, 400.0);
    EXPECT_NEAR(static_cast<double>(high), 2000.0, 400.0);
}

TEST(PhaseStream, CyclesThroughPhases)
{
    std::vector<std::unique_ptr<AddressStream>> phases;
    phases.push_back(std::make_unique<SequentialStream>(0, 1024, 64));
    phases.push_back(std::make_unique<SequentialStream>(1 << 20, 1024, 64));
    PhaseStream s(std::move(phases), 3);
    Pcg32 rng(1);
    // 3 from phase 0, 3 from phase 1, back to phase 0.
    for (int i = 0; i < 3; ++i)
        EXPECT_LT(s.next(rng), 1u << 20);
    for (int i = 0; i < 3; ++i)
        EXPECT_GE(s.next(rng), 1u << 20);
    EXPECT_LT(s.next(rng), 1u << 20);
}

TEST(StreamsDeath, BadGeometry)
{
    EXPECT_DEATH(SequentialStream(0, 32, 64), "footprint");
    EXPECT_DEATH(StridedStream(0, 2, 256, 64, 128), "overlap");
    EXPECT_DEATH(PointerChaseStream(0, 32, 64), "below one line");
}

} // namespace
} // namespace molcache
