#include "cache/way_partitioned.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

WayPartitionedParams
smallParams(u32 assoc = 8, u64 repartition = 0)
{
    WayPartitionedParams p;
    p.sizeBytes = 64_KiB;
    p.associativity = assoc;
    p.lineSize = 64;
    p.repartitionPeriod = repartition;
    return p;
}

MemAccess
read(Addr addr, u16 asid)
{
    return {addr, Asid{asid}, AccessType::Read};
}

TEST(WayPartitioned, EvenInitialSplit)
{
    WayPartitionedCache cache(smallParams(8));
    cache.registerApplication(Asid{0}, 0.1);
    cache.registerApplication(Asid{1}, 0.1);
    EXPECT_EQ(cache.waysOf(Asid{0}), 4u);
    EXPECT_EQ(cache.waysOf(Asid{1}), 4u);
    cache.registerApplication(Asid{2}, 0.1);
    // 8 ways over 3 apps: 3/3/2.
    EXPECT_EQ(cache.waysOf(Asid{0}) + cache.waysOf(Asid{1}) + cache.waysOf(Asid{2}), 8u);
    EXPECT_GE(cache.waysOf(Asid{0}), 2u);
    EXPECT_GE(cache.waysOf(Asid{2}), 2u);
}

TEST(WayPartitioned, MissThenHit)
{
    WayPartitionedCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);
    EXPECT_FALSE(cache.access(read(0x1000, 0)).hit);
    EXPECT_TRUE(cache.access(read(0x1000, 0)).hit);
}

TEST(WayPartitioned, PlacementConfinedToOwnColumns)
{
    // App 0 gets 4 of 8 ways. Pushing 8 conflicting lines through app 0
    // can keep at most 4 alive.
    WayPartitionedCache cache(smallParams(8));
    cache.registerApplication(Asid{0}, 0.1);
    cache.registerApplication(Asid{1}, 0.1);
    const u64 span = smallParams().numSets() * 64ull; // same set, new tag
    for (u32 i = 0; i < 8; ++i)
        cache.access(read(i * span, 0));
    u32 alive = 0;
    for (u32 i = 0; i < 8; ++i)
        alive += cache.access(read(i * span, 0)).hit ? 1 : 0;
    // The re-check pass itself evicts, so alive <= 4 strictly.
    EXPECT_LE(alive, 4u);
}

TEST(WayPartitioned, PartitioningIsolatesNeighbours)
{
    // App 1's thrashing traffic cannot displace app 0's lines.
    WayPartitionedCache cache(smallParams(8));
    cache.registerApplication(Asid{0}, 0.1);
    cache.registerApplication(Asid{1}, 0.1);
    cache.access(read(0x2000, 0));
    const u64 span = smallParams().numSets() * 64ull;
    for (u32 i = 1; i < 40; ++i)
        cache.access(read(0x2000 + i * span, 1));
    EXPECT_TRUE(cache.access(read(0x2000, 0)).hit)
        << "column partitioning failed to protect app 0";
}

TEST(WayPartitioned, CrossPartitionHitsAreLegal)
{
    // Column caching restricts placement, not lookup: after a column
    // moves, another app can still hit lines left in it.  Simulate by
    // app 0 caching a line, then app 1 reading the same address: app 1
    // misses (fills its own column) but app 0's copy is untouched —
    // lookup sees both; the tag matches once, so the *first* access
    // from app 1 actually hits app 0's copy.
    WayPartitionedCache cache(smallParams(8));
    cache.registerApplication(Asid{0}, 0.1);
    cache.registerApplication(Asid{1}, 0.1);
    cache.access(read(0x3000, 0));
    EXPECT_TRUE(cache.access(read(0x3000, 1)).hit)
        << "lookup must search all ways";
}

TEST(WayPartitioned, GoalDrivenRepartition)
{
    // App 0 overachieves (tiny working set, loose goal), app 1 misses
    // heavily against a tight goal: columns must flow 0 -> 1.
    WayPartitionedCache cache(smallParams(8, /*repartition=*/2000));
    cache.registerApplication(Asid{0}, 0.50);
    cache.registerApplication(Asid{1}, 0.05);
    Pcg32 rng(7);
    for (u32 i = 0; i < 40000; ++i) {
        cache.access(read((i % 4) * 64, 0)); // 4 hot lines: ~always hits
        cache.access(
            read(static_cast<Addr>(rng.below(4096)) * 64 + (1u << 30), 1));
    }
    EXPECT_GT(cache.repartitions(), 0u);
    EXPECT_GT(cache.waysOf(Asid{1}), cache.waysOf(Asid{0}));
    EXPECT_GE(cache.waysOf(Asid{0}), 1u); // never starved to zero
    EXPECT_EQ(cache.waysOf(Asid{0}) + cache.waysOf(Asid{1}), 8u);
}

TEST(WayPartitioned, PerAsidStats)
{
    WayPartitionedCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);
    cache.access(read(0x0, 0));
    cache.access(read(0x0, 0));
    EXPECT_EQ(cache.stats().forAsid(Asid{0}).accesses, 2u);
    EXPECT_EQ(cache.stats().forAsid(Asid{0}).hits, 1u);
}

TEST(WayPartitioned, NameAndReset)
{
    WayPartitionedCache cache(smallParams());
    EXPECT_NE(cache.name().find("column-partitioned"), std::string::npos);
    cache.access(read(0, 0));
    cache.resetStats();
    EXPECT_EQ(cache.stats().global().accesses, 0u);
}

TEST(WayPartitionedDeath, TooManyApps)
{
    WayPartitionedCache cache(smallParams(2));
    cache.registerApplication(Asid{0}, 0.1);
    cache.registerApplication(Asid{1}, 0.1);
    EXPECT_EXIT(cache.registerApplication(Asid{2}, 0.1),
                ::testing::ExitedWithCode(1), "at most associativity");
}

TEST(WayPartitionedDeath, DoubleRegistration)
{
    WayPartitionedCache cache(smallParams());
    cache.registerApplication(Asid{0}, 0.1);
    EXPECT_EXIT(cache.registerApplication(Asid{0}, 0.1),
                ::testing::ExitedWithCode(1), "already registered");
}

} // namespace
} // namespace molcache
