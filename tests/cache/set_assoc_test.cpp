#include "cache/set_assoc.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace molcache {
namespace {

SetAssocParams
smallCache(u32 assoc = 2, ReplPolicy repl = ReplPolicy::Lru)
{
    SetAssocParams p;
    p.sizeBytes = 8_KiB;
    p.associativity = assoc;
    p.lineSize = 64;
    p.replacement = repl;
    return p;
}

MemAccess
read(Addr addr, u16 asid = 0)
{
    return {addr, Asid{asid}, AccessType::Read};
}

MemAccess
write(Addr addr, u16 asid = 0)
{
    return {addr, Asid{asid}, AccessType::Write};
}

TEST(SetAssoc, ColdMissThenHit)
{
    SetAssocCache cache(smallCache());
    EXPECT_FALSE(cache.access(read(0x1000)).hit);
    EXPECT_TRUE(cache.access(read(0x1000)).hit);
    EXPECT_TRUE(cache.access(read(0x1038)).hit); // same line
    EXPECT_FALSE(cache.access(read(0x1040)).hit); // next line
}

TEST(SetAssoc, GeometryDerivation)
{
    const SetAssocParams p = smallCache(4);
    EXPECT_EQ(p.numSets(), 32u);
    EXPECT_EQ(p.numLines(), 128u);
}

TEST(SetAssoc, LruEvictionWithinSet)
{
    // 2-way, 64 sets. Three lines mapping to set 0 force an eviction of
    // the least recently used.
    SetAssocCache cache(smallCache(2));
    const u32 set_span = 64 * 64; // lineSize * sets
    cache.access(read(0));                   // A
    cache.access(read(set_span));            // B
    cache.access(read(0));                   // touch A
    cache.access(read(2 * set_span));        // C evicts B
    EXPECT_TRUE(cache.access(read(0)).hit);  // A alive
    EXPECT_FALSE(cache.access(read(set_span)).hit); // B gone
}

TEST(SetAssoc, ProbeDoesNotDisturbState)
{
    SetAssocCache cache(smallCache());
    cache.access(read(0x80));
    EXPECT_TRUE(cache.probe(0x80));
    EXPECT_FALSE(cache.probe(0x8000000));
    // probe must not have inserted anything.
    EXPECT_FALSE(cache.access(read(0x8000000)).hit);
}

TEST(SetAssoc, PerAsidStats)
{
    SetAssocCache cache(smallCache());
    cache.access(read(0x100, 1));
    cache.access(read(0x100, 1));
    cache.access(read(0x4000, 2));
    EXPECT_EQ(cache.stats().forAsid(Asid{1}).accesses, 2u);
    EXPECT_EQ(cache.stats().forAsid(Asid{1}).hits, 1u);
    EXPECT_EQ(cache.stats().forAsid(Asid{2}).misses, 1u);
    EXPECT_DOUBLE_EQ(cache.stats().forAsid(Asid{1}).missRate(), 0.5);
}

TEST(SetAssoc, WritebackOnDirtyEviction)
{
    SetAssocCache cache(smallCache(1)); // direct mapped: easy conflicts
    const u32 set_span = 64 * 128;      // lineSize * sets (128 sets)
    cache.access(write(0));             // dirty line in set 0
    cache.access(read(set_span));       // evicts it
    EXPECT_EQ(cache.stats().global().writebacks, 1u);
    cache.access(read(2 * set_span));   // clean eviction
    EXPECT_EQ(cache.stats().global().writebacks, 1u);
}

TEST(SetAssoc, WriteHitMarksDirty)
{
    SetAssocCache cache(smallCache(1));
    const u32 set_span = 64 * 128;
    cache.access(read(0));
    cache.access(write(0)); // hit, marks dirty
    cache.access(read(set_span));
    EXPECT_EQ(cache.stats().global().writebacks, 1u);
}

TEST(SetAssoc, FlushInvalidatesEverything)
{
    SetAssocCache cache(smallCache());
    cache.access(read(0x100));
    cache.flush();
    EXPECT_FALSE(cache.probe(0x100));
    EXPECT_FALSE(cache.access(read(0x100)).hit);
}

TEST(SetAssoc, OccupancyTracksAsid)
{
    SetAssocCache cache(smallCache());
    for (u32 i = 0; i < 8; ++i)
        cache.access(read(i * 64, 3));
    EXPECT_EQ(cache.occupancy(Asid{3}), 8u);
    EXPECT_EQ(cache.occupancy(Asid{4}), 0u);
}

TEST(SetAssoc, EnergyAccounting)
{
    SetAssocParams p = smallCache();
    p.energyPerAccessNj = 0.5;
    SetAssocCache cache(p);
    cache.access(read(0));
    cache.access(read(0));
    EXPECT_DOUBLE_EQ(cache.totalEnergyNj(), 1.0);
    cache.resetStats();
    EXPECT_DOUBLE_EQ(cache.totalEnergyNj(), 0.0);
}

TEST(SetAssoc, NameDescribesGeometry)
{
    EXPECT_EQ(SetAssocCache(smallCache(1)).name(), "8KiB direct-mapped lru");
    EXPECT_EQ(SetAssocCache(smallCache(4)).name(), "8KiB 4-way lru");
}

TEST(SetAssocDeath, BadGeometry)
{
    SetAssocParams p = smallCache();
    p.lineSize = 48; // not a power of two
    EXPECT_EXIT(SetAssocCache cache(p), ::testing::ExitedWithCode(1),
                "power of two");
}

/** Property: a cache of N lines holds any N-line working set after one
 * pass (no spurious evictions), for every policy and associativity. */
class FullCapacity
    : public ::testing::TestWithParam<std::tuple<ReplPolicy, u32>>
{
};

TEST_P(FullCapacity, WorkingSetEqualToCapacityAllHitsSecondPass)
{
    const auto [policy, assoc] = GetParam();
    SetAssocCache cache(smallCache(assoc, policy));
    const u32 lines = cache.params().numLines();
    for (u32 i = 0; i < lines; ++i)
        cache.access(read(static_cast<Addr>(i) * 64));
    for (u32 i = 0; i < lines; ++i)
        EXPECT_TRUE(cache.access(read(static_cast<Addr>(i) * 64)).hit)
            << "line " << i;
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndWays, FullCapacity,
    ::testing::Combine(::testing::Values(ReplPolicy::Lru, ReplPolicy::Fifo,
                                         ReplPolicy::TreePlru),
                       ::testing::Values(1u, 2u, 4u, 8u)));

} // namespace
} // namespace molcache
