#include "cache/cache_stats.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

TEST(CacheStats, RecordsGlobalAndPerAsid)
{
    CacheStats s;
    s.record(1, true, false);
    s.record(1, false, true);
    s.record(2, false, false);

    EXPECT_EQ(s.global().accesses, 3u);
    EXPECT_EQ(s.global().hits, 1u);
    EXPECT_EQ(s.global().misses, 2u);
    EXPECT_EQ(s.global().writes, 1u);

    EXPECT_EQ(s.forAsid(1).accesses, 2u);
    EXPECT_EQ(s.forAsid(1).hits, 1u);
    EXPECT_EQ(s.forAsid(2).misses, 1u);
}

TEST(CacheStats, UnknownAsidIsZeros)
{
    CacheStats s;
    EXPECT_EQ(s.forAsid(42).accesses, 0u);
    EXPECT_DOUBLE_EQ(s.forAsid(42).missRate(), 0.0);
}

TEST(CacheStats, MissRatesMapOnlySeenAsids)
{
    CacheStats s;
    s.record(0, false, false);
    s.record(0, true, false);
    s.record(5, false, false);
    const auto rates = s.missRates();
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates.at(0), 0.5);
    EXPECT_DOUBLE_EQ(rates.at(5), 1.0);
}

TEST(CacheStats, Writebacks)
{
    CacheStats s;
    s.recordWriteback(3);
    s.recordWriteback(3);
    EXPECT_EQ(s.global().writebacks, 2u);
    EXPECT_EQ(s.forAsid(3).writebacks, 2u);
}

TEST(CacheStats, Reset)
{
    CacheStats s;
    s.record(1, false, false);
    s.recordWriteback(1);
    s.reset();
    EXPECT_EQ(s.global().accesses, 0u);
    EXPECT_EQ(s.global().writebacks, 0u);
    EXPECT_TRUE(s.perAsid().empty());
}

TEST(CacheStats, HitRateComplementsMissRate)
{
    CacheStats s;
    for (int i = 0; i < 3; ++i)
        s.record(0, true, false);
    s.record(0, false, false);
    EXPECT_DOUBLE_EQ(s.global().hitRate(), 0.75);
    EXPECT_DOUBLE_EQ(s.global().missRate(), 0.25);
}

} // namespace
} // namespace molcache
