#include "cache/cache_stats.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

TEST(CacheStats, RecordsGlobalAndPerAsid)
{
    CacheStats s;
    s.record(Asid{1}, true, false);
    s.record(Asid{1}, false, true);
    s.record(Asid{2}, false, false);

    EXPECT_EQ(s.global().accesses, 3u);
    EXPECT_EQ(s.global().hits, 1u);
    EXPECT_EQ(s.global().misses, 2u);
    EXPECT_EQ(s.global().writes, 1u);

    EXPECT_EQ(s.forAsid(Asid{1}).accesses, 2u);
    EXPECT_EQ(s.forAsid(Asid{1}).hits, 1u);
    EXPECT_EQ(s.forAsid(Asid{2}).misses, 1u);
}

TEST(CacheStats, UnknownAsidIsZeros)
{
    CacheStats s;
    EXPECT_EQ(s.forAsid(Asid{42}).accesses, 0u);
    EXPECT_DOUBLE_EQ(s.forAsid(Asid{42}).missRate(), 0.0);
}

TEST(CacheStats, MissRatesMapOnlySeenAsids)
{
    CacheStats s;
    s.record(Asid{0}, false, false);
    s.record(Asid{0}, true, false);
    s.record(Asid{5}, false, false);
    const auto rates = s.missRates();
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates.at(Asid{0}), 0.5);
    EXPECT_DOUBLE_EQ(rates.at(Asid{5}), 1.0);
}

TEST(CacheStats, Writebacks)
{
    CacheStats s;
    s.recordWriteback(Asid{3});
    s.recordWriteback(Asid{3});
    EXPECT_EQ(s.global().writebacks, 2u);
    EXPECT_EQ(s.forAsid(Asid{3}).writebacks, 2u);
}

TEST(CacheStats, Reset)
{
    CacheStats s;
    s.record(Asid{1}, false, false);
    s.recordWriteback(Asid{1});
    s.reset();
    EXPECT_EQ(s.global().accesses, 0u);
    EXPECT_EQ(s.global().writebacks, 0u);
    EXPECT_TRUE(s.perAsid().empty());
}

TEST(CacheStats, RetireRecyclesTheDenseSlot)
{
    CacheStats s;
    s.record(Asid{7}, false, false);
    s.record(Asid{7}, true, false);
    ASSERT_EQ(s.forAsid(Asid{7}).accesses, 2u);
    EXPECT_EQ(s.generationOf(Asid{7}), 0u);

    // Regression: the dense per-ASID index used to assume an ASID value
    // is never reused, so a recycled ASID inherited its predecessor's
    // counters.  retire() must clear the slot and tag the reuse.
    s.retire(Asid{7});
    EXPECT_EQ(s.forAsid(Asid{7}).accesses, 0u)
        << "a recycled ASID must start from zeroed counters";
    EXPECT_EQ(s.generationOf(Asid{7}), 1u);
    EXPECT_TRUE(s.perAsid().find(Asid{7}) == s.perAsid().end())
        << "retired slots must leave the per-ASID map";

    // Lifetime totals survive the departure...
    EXPECT_EQ(s.global().accesses, 2u);

    // ...and the successor accumulates independently, under the next
    // generation once it too retires.
    s.record(Asid{7}, true, false);
    EXPECT_EQ(s.forAsid(Asid{7}).accesses, 1u);
    s.retire(Asid{7});
    EXPECT_EQ(s.generationOf(Asid{7}), 2u);
}

TEST(CacheStats, RetireUnseenAsidStillMarksReuse)
{
    CacheStats s;
    s.retire(Asid{3});
    EXPECT_EQ(s.generationOf(Asid{3}), 1u)
        << "even an unseen retire marks a reuse boundary";
    s.record(Asid{3}, false, false);
    EXPECT_EQ(s.forAsid(Asid{3}).accesses, 1u);
}

TEST(CacheStats, ResetClearsGenerations)
{
    CacheStats s;
    s.record(Asid{1}, false, false);
    s.retire(Asid{1});
    ASSERT_EQ(s.generationOf(Asid{1}), 1u);
    s.reset();
    EXPECT_EQ(s.generationOf(Asid{1}), 0u);
}

TEST(CacheStats, HitRateComplementsMissRate)
{
    CacheStats s;
    for (int i = 0; i < 3; ++i)
        s.record(Asid{0}, true, false);
    s.record(Asid{0}, false, false);
    EXPECT_DOUBLE_EQ(s.global().hitRate(), 0.75);
    EXPECT_DOUBLE_EQ(s.global().missRate(), 0.25);
}

} // namespace
} // namespace molcache
