#include "cache/replacement.hpp"

#include <gtest/gtest.h>

#include <set>

namespace molcache {
namespace {

TEST(Replacement, ParseAndName)
{
    EXPECT_EQ(parseReplPolicy("lru"), ReplPolicy::Lru);
    EXPECT_EQ(parseReplPolicy("fifo"), ReplPolicy::Fifo);
    EXPECT_EQ(parseReplPolicy("random"), ReplPolicy::Random);
    EXPECT_EQ(parseReplPolicy("plru"), ReplPolicy::TreePlru);
    EXPECT_EQ(replPolicyName(ReplPolicy::Lru), "lru");
    EXPECT_EQ(replPolicyName(ReplPolicy::TreePlru), "plru");
}

TEST(Replacement, LruEvictsOldest)
{
    auto lru = makeReplacementState(ReplPolicy::Lru, 1, 4);
    for (u32 w = 0; w < 4; ++w)
        lru->insert(0, w);
    EXPECT_EQ(lru->victim(0), 0u); // way 0 inserted first
    lru->touch(0, 0);              // refresh way 0
    EXPECT_EQ(lru->victim(0), 1u); // now way 1 is oldest
}

TEST(Replacement, LruPerSetIndependent)
{
    auto lru = makeReplacementState(ReplPolicy::Lru, 2, 2);
    lru->insert(0, 0);
    lru->insert(1, 1);
    lru->insert(0, 1);
    lru->insert(1, 0);
    EXPECT_EQ(lru->victim(0), 0u);
    EXPECT_EQ(lru->victim(1), 1u);
}

TEST(Replacement, FifoIgnoresTouches)
{
    auto fifo = makeReplacementState(ReplPolicy::Fifo, 1, 4);
    for (u32 w = 0; w < 4; ++w)
        fifo->insert(0, w);
    fifo->touch(0, 0); // FIFO must not care
    const u32 v = fifo->victim(0);
    EXPECT_EQ(v, 0u);
    fifo->insert(0, v);
    EXPECT_EQ(fifo->victim(0), 1u); // rotation advances
}

TEST(Replacement, RandomCoversAllWays)
{
    auto rnd = makeReplacementState(ReplPolicy::Random, 1, 8, 3);
    std::set<u32> seen;
    for (int i = 0; i < 500; ++i) {
        const u32 v = rnd->victim(0);
        EXPECT_LT(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Replacement, TreePlruApproximatesLru)
{
    auto plru = makeReplacementState(ReplPolicy::TreePlru, 1, 4);
    for (u32 w = 0; w < 4; ++w)
        plru->insert(0, w);
    // After touching 0,1,2 in order, the victim must be 3's sibling
    // region — specifically not the most recently touched way.
    plru->touch(0, 3);
    plru->touch(0, 2);
    EXPECT_NE(plru->victim(0), 2u);
    plru->touch(0, 0);
    EXPECT_NE(plru->victim(0), 0u);
}

TEST(Replacement, TreePlruVictimNeverMru)
{
    auto plru = makeReplacementState(ReplPolicy::TreePlru, 4, 8);
    Pcg32 rng(5);
    for (int i = 0; i < 2000; ++i) {
        const u32 set = rng.below(4);
        const u32 way = rng.below(8);
        plru->touch(set, way);
        EXPECT_NE(plru->victim(set), way);
    }
}

TEST(ReplacementDeath, UnknownPolicyName)
{
    EXPECT_EXIT(parseReplPolicy("mru"), ::testing::ExitedWithCode(1),
                "unknown replacement policy");
}

/** Property across all policies: victims are always legal ways. */
class VictimRange
    : public ::testing::TestWithParam<std::tuple<ReplPolicy, u32>>
{
};

TEST_P(VictimRange, AlwaysInBounds)
{
    const auto [policy, ways] = GetParam();
    auto state = makeReplacementState(policy, 8, ways, 11);
    Pcg32 rng(17);
    for (int i = 0; i < 1000; ++i) {
        const u32 set = rng.below(8);
        const u32 way = rng.below(ways);
        state->insert(set, way);
        state->touch(set, rng.below(ways));
        EXPECT_LT(state->victim(set), ways);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, VictimRange,
    ::testing::Combine(::testing::Values(ReplPolicy::Lru, ReplPolicy::Fifo,
                                         ReplPolicy::Random,
                                         ReplPolicy::TreePlru),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u)));

} // namespace
} // namespace molcache
