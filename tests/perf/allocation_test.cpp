/**
 * @file
 * Pins the zero-allocation property of the steady-state access path
 * (docs/perf.md): once a working set is warm, MolecularCache::access
 * must perform no heap allocations — the memoized probe schedules and
 * dense indices make the hot path allocation-free, and this test is the
 * gate that keeps it that way.
 *
 * The whole binary's global operator new/delete are replaced with
 * counting versions; the test samples the counter around a window of
 * all-hit accesses and requires it not to move.  This TU must stay its
 * own test binary so the override cannot perturb the other suites.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/molecular_cache.hpp"
#include "util/units.hpp"

namespace {

std::atomic<unsigned long long> g_heapAllocs{0};

void *
countedAlloc(std::size_t size)
{
    ++g_heapAllocs;
    void *p = std::malloc(size == 0 ? 1 : size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    ++g_heapAllocs;
    // aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t rounded = (size + align - 1) / align * align;
    void *p = std::aligned_alloc(align, rounded == 0 ? align : rounded);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace molcache {
namespace {

MolecularCacheParams
steadyParams(PlacementPolicy policy, bool rowRestricted)
{
    MolecularCacheParams p;
    p.moleculeSize = 8_KiB;
    p.moleculesPerTile = 8;
    p.tilesPerCluster = 2;
    p.clusters = 1;
    p.placement = policy;
    p.rowRestrictedLookup = rowRestricted;
    p.initialAllocation = InitialAllocation::Small;
    p.initialMolecules = 2;
    p.resizePeriod = 1u << 30; // no resize inside the measured window
    p.maxResizePeriod = 1u << 30;
    return p;
}

void
expectZeroAllocSteadyState(PlacementPolicy policy, bool rowRestricted)
{
    MolecularCache cache(steadyParams(policy, rowRestricted));
    for (u16 a = 0; a < 2; ++a)
        cache.registerApplication(Asid{a}, 0.1);

    // Working set: one molecule's worth of distinct line slots per app.
    // Every line lands in its own slot, so warmup fills never displace
    // and every later access hits — the steady-state regime.
    std::vector<MemAccess> trace;
    for (u32 i = 0; i < 128; ++i) {
        for (u16 a = 0; a < 2; ++a) {
            trace.push_back({static_cast<Addr>(i) * 64, Asid{a},
                             i % 7 == 0 ? AccessType::Write
                                        : AccessType::Read});
        }
    }
    for (int pass = 0; pass < 3; ++pass)
        for (const MemAccess &m : trace)
            cache.access(m);

    u64 hits = 0;
    const unsigned long long before = g_heapAllocs.load();
    for (int pass = 0; pass < 10; ++pass)
        for (const MemAccess &m : trace)
            hits += cache.access(m).hit ? 1 : 0;
    const unsigned long long after = g_heapAllocs.load();

    ASSERT_EQ(hits, 10u * trace.size())
        << "measurement window must be all hits (steady state)";
    EXPECT_EQ(after - before, 0u)
        << "steady-state accesses must not allocate";
}

TEST(HotpathAllocations, ZeroPerAccessRandom)
{
    expectZeroAllocSteadyState(PlacementPolicy::Random, false);
}

TEST(HotpathAllocations, ZeroPerAccessRandy)
{
    expectZeroAllocSteadyState(PlacementPolicy::Randy, false);
}

TEST(HotpathAllocations, ZeroPerAccessRandyRowRestricted)
{
    expectZeroAllocSteadyState(PlacementPolicy::Randy, true);
}

TEST(HotpathAllocations, ZeroPerAccessLruDirect)
{
    expectZeroAllocSteadyState(PlacementPolicy::LruDirect, false);
}

/**
 * Same gate for the batched plane: once the per-ASID lanes and the
 * way-memo tables exist (built by the first block after warmup),
 * steady-state accessBatch() must not allocate either — lane rebuilds
 * happen only on generation changes, and none occur in the window.
 */
void
expectZeroAllocBatchSteadyState(PlacementPolicy policy, bool rowRestricted)
{
    MolecularCache cache(steadyParams(policy, rowRestricted));
    for (u16 a = 0; a < 2; ++a)
        cache.registerApplication(Asid{a}, 0.1);

    std::vector<MemAccess> trace;
    for (u32 i = 0; i < 128; ++i) {
        for (u16 a = 0; a < 2; ++a) {
            trace.push_back({static_cast<Addr>(i) * 64, Asid{a},
                             i % 7 == 0 ? AccessType::Write
                                        : AccessType::Read});
        }
    }
    std::vector<AccessResult> results(trace.size());
    for (int pass = 0; pass < 3; ++pass)
        for (const MemAccess &m : trace)
            cache.access(m);
    // One warm batch pass builds the lanes + memo tables.
    cache.accessBatch({trace.data(), trace.size()},
                      {results.data(), results.size()});

    u64 hits = 0;
    const unsigned long long before = g_heapAllocs.load();
    for (int pass = 0; pass < 10; ++pass) {
        cache.accessBatch({trace.data(), trace.size()},
                          {results.data(), results.size()});
        for (const AccessResult &r : results)
            hits += r.hit ? 1 : 0;
    }
    const unsigned long long after = g_heapAllocs.load();

    ASSERT_EQ(hits, 10u * trace.size())
        << "measurement window must be all hits (steady state)";
    EXPECT_EQ(after - before, 0u)
        << "steady-state batched accesses must not allocate";
}

TEST(HotpathAllocations, ZeroPerBatchRandom)
{
    expectZeroAllocBatchSteadyState(PlacementPolicy::Random, false);
}

TEST(HotpathAllocations, ZeroPerBatchRandy)
{
    expectZeroAllocBatchSteadyState(PlacementPolicy::Randy, false);
}

TEST(HotpathAllocations, ZeroPerBatchLruDirect)
{
    expectZeroAllocBatchSteadyState(PlacementPolicy::LruDirect, false);
}

/** The scalar-fallback batch path (row-restricted is ineligible for
 * lane hoisting) must be allocation-free too. */
TEST(HotpathAllocations, ZeroPerBatchRowRestrictedFallback)
{
    expectZeroAllocBatchSteadyState(PlacementPolicy::Randy, true);
}

/** The counter itself must observe allocations, or the zero above would
 * be vacuous. */
TEST(HotpathAllocations, CounterSeesAllocations)
{
    const unsigned long long before = g_heapAllocs.load();
    auto *v = new std::vector<int>(64, 1);
    EXPECT_EQ(v->size(), 64u);
    delete v;
    EXPECT_GT(g_heapAllocs.load(), before);
}

} // namespace
} // namespace molcache
