#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"
#include "workload/profiles.hpp"

namespace molcache {
namespace {

TEST(Experiment, TraditionalParamsMatchPaperSetup)
{
    const SetAssocParams p = traditionalParams(8_MiB, 8);
    EXPECT_EQ(p.sizeBytes, 8_MiB);
    EXPECT_EQ(p.associativity, 8u);
    EXPECT_EQ(p.lineSize, 64u);
    EXPECT_EQ(p.ports, 4u); // Table 3: traditional cache has 4 ports
    EXPECT_EQ(p.replacement, ReplPolicy::Lru);
    p.validate(); // must not fatal
}

TEST(Experiment, Fig5GeometryScalesTiles)
{
    const MolecularCacheParams p1 =
        fig5MolecularParams(1_MiB, PlacementPolicy::Randy);
    EXPECT_EQ(p1.totalSizeBytes(), 1_MiB);
    EXPECT_EQ(p1.tilesPerCluster, 4u);
    EXPECT_EQ(p1.clusters, 1u);
    EXPECT_EQ(p1.moleculesPerTile, 32u); // 256 KiB tiles of 8 KiB

    const MolecularCacheParams p8 =
        fig5MolecularParams(8_MiB, PlacementPolicy::Random);
    EXPECT_EQ(p8.moleculesPerTile, 256u); // 2 MiB tiles
    EXPECT_EQ(p8.placement, PlacementPolicy::Random);
}

TEST(Experiment, Table2GeometryIsPaperTable3)
{
    const MolecularCacheParams p =
        table2MolecularParams(PlacementPolicy::Randy);
    EXPECT_EQ(p.clusters, 3u);
    EXPECT_EQ(p.tilesPerCluster, 4u);
    EXPECT_EQ(p.tileSizeBytes(), 512_KiB);
    EXPECT_EQ(p.clusterSizeBytes(), 2_MiB);
    EXPECT_EQ(p.totalSizeBytes(), 6_MiB);
}

TEST(Experiment, RegisterApplicationsGroupsContiguously)
{
    MolecularCache cache(table2MolecularParams(PlacementPolicy::Randy));
    registerApplications(cache, 12, 0.25);
    // Apps 0-3 -> cluster 0, 4-7 -> cluster 1, 8-11 -> cluster 2,
    // one tile each (the paper's three groups of four).
    for (u32 i = 0; i < 12; ++i) {
        EXPECT_EQ(cache.region(Asid{static_cast<u16>(i)}).homeCluster(),
                  ClusterId{i / 4})
            << "asid " << i;
    }
    // Within a cluster every app has its own tile.
    for (u32 c = 0; c < 3; ++c) {
        std::set<TileId> tiles;
        for (u32 i = 0; i < 4; ++i)
            tiles.insert(cache.region(Asid{static_cast<u16>(c * 4 + i)})
                             .homeTile());
        EXPECT_EQ(tiles.size(), 4u) << "cluster " << c;
    }
}

TEST(Experiment, RunWorkloadEndToEnd)
{
    SetAssocCache cache(traditionalParams(1_MiB, 4));
    const GoalSet goals = GoalSet::uniform(0.1, 2);
    const SimResult r =
        runWorkload({"ammp", "mcf"}, cache,
                    RunOptions{}.withGoals(goals).withReferences(20000));
    EXPECT_EQ(r.accesses, 20000u);
    EXPECT_EQ(r.qos.apps.size(), 2u);
    EXPECT_EQ(r.qos.byAsid(Asid{0}).label, "ammp");
    EXPECT_EQ(r.qos.byAsid(Asid{1}).label, "mcf");
    // mcf misses far more than ammp on any 1MB cache.
    EXPECT_GT(r.qos.byAsid(Asid{1}).missRate, r.qos.byAsid(Asid{0}).missRate);
}

TEST(Experiment, DeriveGoalsFromSoloProfiling)
{
    const SetAssocParams ref = traditionalParams(1_MiB, 4);
    const GoalSet goals =
        deriveGoalsFromSolo({"ammp", "mcf"}, ref,
                            RunOptions{}.withReferences(100000),
                            /*slackFactor=*/1.5, /*minGoal=*/0.02);
    ASSERT_EQ(goals.size(), 2u);
    // ammp's solo rate (~0.005) is below the floor: clamped to minGoal.
    EXPECT_DOUBLE_EQ(*goals.goal(Asid{0}), 0.02);
    // mcf's solo rate (~0.67) picks up the slack factor.
    EXPECT_GT(*goals.goal(Asid{1}), 0.6);
    EXPECT_LE(*goals.goal(Asid{1}), 1.0);
}

TEST(ExperimentDeath, DeriveGoalsRejectsSubUnitySlack)
{
    EXPECT_EXIT(deriveGoalsFromSolo({"ammp"}, traditionalParams(1_MiB, 4),
                                    RunOptions{}, 0.5),
                ::testing::ExitedWithCode(1), "slack factor");
}

TEST(Experiment, PaperTraceLengthConstant)
{
    EXPECT_EQ(kPaperTraceLength, 3'900'000u);
}

TEST(ExperimentDeath, Fig5SizeMustSplitIntoTiles)
{
    EXPECT_EXIT(fig5MolecularParams(Bytes{100}, PlacementPolicy::Randy),
                ::testing::ExitedWithCode(1), "not divisible");
}

} // namespace
} // namespace molcache
