#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "cache/set_assoc.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

std::unique_ptr<AccessSource>
repeatSource(Addr addr, u64 n)
{
    std::vector<MemAccess> v(n, MemAccess{addr, Asid{0}, AccessType::Read});
    return std::make_unique<VectorSource>(std::move(v));
}

SetAssocParams
tinyCache()
{
    SetAssocParams p;
    p.sizeBytes = 8_KiB;
    p.associativity = 2;
    return p;
}

TEST(Simulator, DrainsSourceAndCounts)
{
    auto src = repeatSource(0x1000, 10);
    SetAssocCache cache(tinyCache());
    const SimResult r = Simulator::run(*src, cache);
    EXPECT_EQ(r.accesses, 10u);
    EXPECT_EQ(r.misses, 1u);
    EXPECT_EQ(r.hits, 9u);
    EXPECT_EQ(r.localHits, 9u);
    EXPECT_EQ(r.remoteHits, 0u);
    EXPECT_EQ(r.cacheName, cache.name());
}

TEST(Simulator, WarmupResetsStats)
{
    auto src = repeatSource(0x1000, 10);
    SetAssocCache cache(tinyCache());
    const SimResult r =
        Simulator::run(*src, cache, RunOptions{}.withWarmup(5));
    // The cold miss happened during warmup; measured window is all hits.
    EXPECT_EQ(r.accesses, 5u);
    EXPECT_EQ(r.misses, 0u);
}

TEST(Simulator, ProgressCallbackFires)
{
    // 2^20 accesses trip the (done & 0xfffff) == 0 progress tick once.
    std::vector<MemAccess> v(1u << 20,
                             MemAccess{0x40, Asid{0}, AccessType::Read});
    VectorSource src(std::move(v));
    SetAssocCache cache(tinyCache());
    u64 calls = 0;
    Simulator::run(src, cache,
                   RunOptions{}.withProgress([&](u64) { ++calls; }));
    EXPECT_EQ(calls, 1u);
}

TEST(Simulator, LabelMapHelper)
{
    const auto labels = labelMap({"a", "b"});
    ASSERT_EQ(labels.size(), 2u);
    EXPECT_EQ(labels.at(Asid{0}), "a");
    EXPECT_EQ(labels.at(Asid{1}), "b");
}

TEST(Simulator, EnergyPropagated)
{
    SetAssocParams p = tinyCache();
    p.energyPerAccessNj = 2.0;
    SetAssocCache cache(p);
    auto src = repeatSource(0x1000, 4);
    const SimResult r = Simulator::run(*src, cache);
    EXPECT_DOUBLE_EQ(r.totalEnergyNj, 8.0);
    EXPECT_DOUBLE_EQ(r.avgEnergyPerAccessNj, 2.0);
}

} // namespace
} // namespace molcache
