/**
 * @file
 * Round-trip tests of the canonical SimResult JSON (sim/result_json.hpp)
 * with a focus on the guardian telemetry block: present, schema-stamped
 * and fully populated when the guardian ran; byte-for-byte absent when
 * it did not (the sweep byte-identity contract).
 */

#include "sim/result_json.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace molcache {
namespace {

SimResult
baseResult()
{
    SimResult r;
    r.cacheName = "molecular-test";
    r.accesses = 1000;
    r.hits = 900;
    r.misses = 100;
    AppSummary app;
    app.asid = Asid{0};
    app.label = "phaseflip";
    app.accesses = 1000;
    app.missRate = 0.25;
    app.goal = 0.1;
    app.deviation = 0.15;
    r.qos.apps.push_back(app);
    return r;
}

std::string
serialize(const SimResult &r)
{
    std::ostringstream out;
    JsonWriter json(out);
    writeSimResultDocument(json, r);
    return out.str();
}

TEST(ResultJsonGuardian, DisabledGuardianLeavesNoTrace)
{
    const std::string doc = serialize(baseResult());
    EXPECT_EQ(doc.find("guardian"), std::string::npos);
    EXPECT_NE(doc.find("\"kind\""), std::string::npos);
    EXPECT_NE(doc.find("sim_result"), std::string::npos);
    EXPECT_NE(doc.find("schemaVersion"), std::string::npos);
}

TEST(ResultJsonGuardian, EnabledGuardianEmitsSummaryBlock)
{
    SimResult r = baseResult();
    r.guardian.enabled = true;
    r.guardian.oscillationEvents = 3;
    r.guardian.floorHits = 7;
    r.guardian.floorRestoreGrants = 2;
    r.guardian.holdEpochs = 41;
    r.guardian.infeasibleRegions = 1;
    r.guardian.stuckRegions = 1;
    r.guardian.maxEpochsToGoal = 12;
    r.guardian.maxShortfall = 0.35;
    r.guardian.poolPressure = 0.5;

    const std::string doc = serialize(r);
    EXPECT_NE(doc.find("\"guardian\""), std::string::npos);
    EXPECT_NE(doc.find("\"oscillation_events\": 3"), std::string::npos);
    EXPECT_NE(doc.find("\"floor_hits\": 7"), std::string::npos);
    EXPECT_NE(doc.find("\"floor_restore_grants\": 2"), std::string::npos);
    EXPECT_NE(doc.find("\"hold_epochs\": 41"), std::string::npos);
    EXPECT_NE(doc.find("\"infeasible_regions\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"stuck_regions\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"max_epochs_to_goal\": 12"), std::string::npos);
    EXPECT_NE(doc.find("\"max_shortfall\""), std::string::npos);
    EXPECT_NE(doc.find("\"pool_pressure\""), std::string::npos);
}

TEST(ResultJsonGuardian, PerAppTelemetryRidesOnAppEntries)
{
    SimResult r = baseResult();
    r.guardian.enabled = true;
    GuardianAppTelemetry g;
    g.verdict = FeasibilityVerdict::Infeasible;
    g.shortfall = 0.35;
    g.oscillationEvents = 2;
    g.maxSignFlips = 2;
    g.floorHits = 4;
    g.floorRestoreGrants = 1;
    g.holdEpochs = 9;
    g.lastEpochsToGoal = 6;
    g.maxEpochsToGoal = 8;
    g.stuck = false;
    r.qos.apps[0].guardian = g;

    const std::string doc = serialize(r);
    EXPECT_NE(doc.find("\"verdict\": \"infeasible\""), std::string::npos);
    EXPECT_NE(doc.find("\"max_sign_flips\": 2"), std::string::npos);
    EXPECT_NE(doc.find("\"last_epochs_to_goal\": 6"), std::string::npos);
    EXPECT_NE(doc.find("\"stuck\": false"), std::string::npos);

    // Stuck flag serializes as a JSON bool, not a count.
    r.qos.apps[0].guardian->stuck = true;
    EXPECT_NE(serialize(r).find("\"stuck\": true"), std::string::npos);
}

TEST(ResultJsonWayMemo, OmittedWhenMemoSawNoTraffic)
{
    // All-zero counters (memo disabled, fused off, or a non-molecular
    // model) must leave the document byte-identical to memo-free builds.
    const std::string doc = serialize(baseResult());
    EXPECT_EQ(doc.find("way_memo"), std::string::npos);
}

TEST(ResultJsonWayMemo, EmitsCountersWhenPopulated)
{
    SimResult r = baseResult();
    r.wayMemoHits = 1234;
    r.wayMemoMispredicts = 56;
    r.wayMemoInvalidations = 7;
    const std::string doc = serialize(r);
    EXPECT_NE(doc.find("\"way_memo\""), std::string::npos);
    EXPECT_NE(doc.find("\"hits\": 1234"), std::string::npos);
    EXPECT_NE(doc.find("\"mispredicts\": 56"), std::string::npos);
    EXPECT_NE(doc.find("\"invalidations\": 7"), std::string::npos);

    // Invalidations alone (e.g. a run fused off immediately after a
    // table rebuild) still force the block out.
    SimResult inv = baseResult();
    inv.wayMemoInvalidations = 3;
    EXPECT_NE(serialize(inv).find("\"way_memo\""), std::string::npos);
}

TEST(ResultJsonGuardian, DeterministicBytes)
{
    SimResult r = baseResult();
    r.guardian.enabled = true;
    r.qos.apps[0].guardian = GuardianAppTelemetry{};
    EXPECT_EQ(serialize(r), serialize(r));
}

} // namespace
} // namespace molcache
