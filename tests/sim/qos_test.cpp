#include "sim/qos.hpp"

#include <gtest/gtest.h>

#include "cache/set_assoc.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

TEST(Qos, SummarizeFromCacheStats)
{
    SetAssocParams p;
    p.sizeBytes = 8_KiB;
    p.associativity = 2;
    SetAssocCache cache(p);
    // asid 0: 1 miss + 1 hit; asid 1: 1 miss.
    cache.access({0x100, Asid{0}, AccessType::Read});
    cache.access({0x100, Asid{0}, AccessType::Read});
    cache.access({0x9000, Asid{1}, AccessType::Read});

    GoalSet goals;
    goals.set(Asid{0}, 0.25);

    const QosSummary s =
        summarize(cache, goals, {{Asid{0}, "alpha"}, {Asid{1}, "beta"}});
    ASSERT_EQ(s.apps.size(), 2u);
    EXPECT_EQ(s.totalAccesses, 3u);
    EXPECT_NEAR(s.globalMissRate, 2.0 / 3.0, 1e-12);

    const AppSummary &alpha = s.byAsid(Asid{0});
    EXPECT_EQ(alpha.label, "alpha");
    EXPECT_EQ(alpha.accesses, 2u);
    EXPECT_DOUBLE_EQ(alpha.missRate, 0.5);
    ASSERT_TRUE(alpha.deviation.has_value());
    EXPECT_DOUBLE_EQ(*alpha.deviation, 0.25);

    const AppSummary &beta = s.byAsid(Asid{1});
    EXPECT_EQ(beta.label, "beta");
    EXPECT_FALSE(beta.goal.has_value());
    EXPECT_FALSE(beta.deviation.has_value());

    // Only alpha has a goal: the average is alpha's deviation alone.
    EXPECT_DOUBLE_EQ(s.averageDeviation, 0.25);
}

TEST(Qos, DefaultLabels)
{
    SetAssocParams p;
    p.sizeBytes = 8_KiB;
    p.associativity = 1;
    SetAssocCache cache(p);
    cache.access({0x0, Asid{3}, AccessType::Read});
    const QosSummary s = summarize(cache, GoalSet{});
    EXPECT_EQ(s.byAsid(Asid{3}).label, "asid3");
}

TEST(QosDeath, ByAsidUnknown)
{
    QosSummary s;
    EXPECT_DEATH(s.byAsid(Asid{1}), "no summary");
}

} // namespace
} // namespace molcache
