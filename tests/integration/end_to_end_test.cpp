/**
 * @file
 * End-to-end integration: workload generation -> interleaving -> both
 * cache models -> QoS summaries, at reduced trace lengths so the suite
 * stays fast.  These tests pin the qualitative results the paper's
 * evaluation rests on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/experiment.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

namespace molcache {
namespace {

constexpr u64 kRefs = 400000;

TEST(EndToEnd, StandaloneMissRatesApproximateTable1)
{
    // Calibration guard: each SPEC profile alone on a 1MB 4-way L2 must
    // stay in the band around the paper's Table 1 standalone column.
    const struct
    {
        const char *app;
        double lo, hi;
    } expectations[] = {
        {"art", 0.03, 0.12},    // paper 0.064
        {"ammp", 0.001, 0.03},  // paper 0.008
        {"parser", 0.04, 0.14}, // paper 0.086
        {"mcf", 0.55, 0.80},    // paper 0.668
    };
    for (const auto &e : expectations) {
        SetAssocCache cache(traditionalParams(1_MiB, 4));
        const SimResult r =
            runWorkload({e.app}, cache, RunOptions{}.withReferences(kRefs));
        const double mr = r.qos.byAsid(Asid{0}).missRate;
        EXPECT_GE(mr, e.lo) << e.app;
        EXPECT_LE(mr, e.hi) << e.app;
    }
}

TEST(EndToEnd, MixedProfilesSpanTheIntendedRegimes)
{
    // The Table-2 story needs the 12-app mix to span three regimes on a
    // per-app share of a shared cache: capturable-and-hot (goal easily
    // met), moderate, and hopeless streaming.  Pin each profile's band
    // on a 512KiB 8-way cache (~a 6MB/12-app share) so profile edits
    // cannot silently change the experiment's character.
    const struct
    {
        const char *app;
        double lo, hi;
    } bands[] = {
        {"crafty", 0.0, 0.25},  {"gap", 0.0, 0.30},
        {"gcc", 0.10, 0.55},    {"gzip", 0.05, 0.55},
        {"twolf", 0.0, 0.25},   {"CRC", 0.85, 1.0},
        {"DRR", 0.0, 0.30},     {"NAT", 0.10, 0.45},
        {"CJPEG", 0.0, 0.40},   {"decode", 0.45, 0.90},
        {"epic", 0.0, 0.40},
    };
    for (const auto &b : bands) {
        SetAssocCache cache(traditionalParams(512_KiB, 8));
        const SimResult r =
            runWorkload({b.app}, cache, RunOptions{}.withReferences(200000));
        const double mr = r.qos.byAsid(Asid{0}).missRate;
        EXPECT_GE(mr, b.lo) << b.app;
        EXPECT_LE(mr, b.hi) << b.app;
    }
}

TEST(EndToEnd, MolecularCacheRunsAllProfiles)
{
    // Every registered profile must drive cleanly through the molecular
    // cache (smoke over the whole workload registry).
    MolecularCache cache(
        fig5MolecularParams(2_MiB, PlacementPolicy::Randy));
    std::vector<std::string> four = {"gcc", "CRC", "CJPEG", "gap"};
    for (u32 i = 0; i < 4; ++i)
        cache.registerApplication(Asid{static_cast<u16>(i)}, 0.25,
                                  ClusterId{0}, i, 1);
    const SimResult r =
        runWorkload(four, cache,
                    RunOptions{}
                        .withGoals(GoalSet::uniform(0.25, 4))
                        .withReferences(200000));
    EXPECT_EQ(r.accesses, 200000u);
    for (u32 i = 0; i < 4; ++i)
        EXPECT_GT(r.qos.byAsid(Asid{static_cast<u16>(i)}).accesses, 0u);
}

TEST(EndToEnd, MolecularMeetsGoalForElasticApp)
{
    // ammp (tiny working set) on a molecular cache with a 10% goal must
    // end close to the goal — the withdrawal path at work — while on the
    // traditional cache it overshoots the goal by sitting near zero.
    MolecularCacheParams mp =
        fig5MolecularParams(1_MiB, PlacementPolicy::Randy);
    // A solo under-goal app doubles the adaptive period every cycle; cap
    // it so convergence fits the test's trace length.
    mp.maxResizePeriod = 20000;
    MolecularCache mol(mp);
    mol.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, 1);
    const GoalSet goals = GoalSet::uniform(0.1, 1);
    // Measure the post-convergence window: the first half warms the
    // partition down to its equilibrium size.
    auto src = makeMultiProgramSource({"ammp"}, kRefs);
    const SimResult mr =
        Simulator::run(*src, mol,
                       RunOptions{}
                           .withGoals(goals)
                           .withLabels(labelMap({"ammp"}))
                           .withWarmup(kRefs / 2));

    SetAssocCache trad(traditionalParams(1_MiB, 4));
    const SimResult tr = runWorkload(
        {"ammp"}, trad, RunOptions{}.withGoals(goals).withReferences(kRefs));

    EXPECT_LT(*mr.qos.byAsid(Asid{0}).deviation, 0.05);
    EXPECT_GT(*tr.qos.byAsid(Asid{0}).deviation, 0.07); // ~|0.008 - 0.1|
    EXPECT_LT(mr.qos.averageDeviation, tr.qos.averageDeviation);
}

TEST(EndToEnd, MolecularIsolatesVictimFromStreamer)
{
    // Partitioning decouples parser from its co-runner: parser's miss
    // rate when paired with mcf stays close to its solo-on-molecular
    // level, while on the shared cache the pairing moves it much more.
    // (The molecular win is in *goal tracking*, not raw miss rate vs an
    // equal-size LRU — see Figure 5 — so the property tested here is the
    // decoupling itself.)
    const GoalSet goals = GoalSet::uniform(0.1, 2);
    const RunOptions options =
        RunOptions{}.withGoals(goals).withReferences(kRefs);

    auto shared_mr = [&](const std::vector<std::string> &apps) {
        SetAssocCache cache(traditionalParams(2_MiB, 4));
        return runWorkload(apps, cache, options)
            .qos.byAsid(Asid{0})
            .missRate;
    };
    auto molecular_mr = [&](const std::vector<std::string> &apps) {
        MolecularCache cache(
            fig5MolecularParams(2_MiB, PlacementPolicy::Randy));
        for (u32 i = 0; i < apps.size(); ++i)
            cache.registerApplication(Asid{static_cast<u16>(i)}, 0.1,
                                  ClusterId{0}, i, 1);
        return runWorkload(apps, cache, options)
            .qos.byAsid(Asid{0})
            .missRate;
    };

    const double shared_shift =
        std::fabs(shared_mr({"parser", "mcf"}) - shared_mr({"parser"}));
    const double mol_shift = std::fabs(molecular_mr({"parser", "mcf"}) -
                                       molecular_mr({"parser"}));
    EXPECT_LT(mol_shift, shared_shift)
        << "molecular partitioning failed to decouple parser from mcf";
}

TEST(EndToEnd, MolecularBeatsTraditionalOnGraphBDeviation)
{
    // Figure 5 Graph B's headline at 4MB: the molecular cache tracks the
    // 10% goals (art/ammp/parser; mcf goal-less) better than an
    // equal-size 4-way traditional cache.
    GoalSet goals;
    goals.set(Asid{0}, 0.1); // art
    goals.set(Asid{1}, 0.1); // ammp
    goals.set(Asid{2}, 0.1); // parser

    // Needs a near-paper-length trace: the adaptive partitions take a
    // couple of million references to settle.
    constexpr u64 kLongRefs = 2'000'000;
    const RunOptions long_run =
        RunOptions{}.withGoals(goals).withReferences(kLongRefs);

    SetAssocCache trad(traditionalParams(4_MiB, 4));
    const double trad_dev =
        runWorkload(spec4Names(), trad, long_run).qos.averageDeviation;

    MolecularCache mol(fig5MolecularParams(4_MiB, PlacementPolicy::Randy));
    for (u32 i = 0; i < 4; ++i)
        mol.registerApplication(Asid{static_cast<u16>(i)}, 0.1,
                                  ClusterId{0}, i, 1);
    const double mol_dev =
        runWorkload(spec4Names(), mol, long_run).qos.averageDeviation;

    EXPECT_LT(mol_dev, trad_dev);
}

TEST(EndToEnd, EnergyPerAccessBelowWorstCase)
{
    MolecularCache mol(fig5MolecularParams(1_MiB, PlacementPolicy::Randy));
    for (u32 i = 0; i < 4; ++i)
        mol.registerApplication(Asid{static_cast<u16>(i)}, 0.1,
                                  ClusterId{0}, i, 1);
    runWorkload(spec4Names(), mol,
                RunOptions{}
                    .withGoals(GoalSet::uniform(0.1, 4))
                    .withReferences(kRefs));
    EXPECT_GT(mol.averageAccessEnergyNj(), 0.0);
    EXPECT_LT(mol.averageAccessEnergyNj(),
              2.0 * mol.worstCaseAccessEnergyNj());
    EXPECT_GT(mol.averageProbesPerAccess(), 0.0);
    EXPECT_LE(mol.averageEnabledMolecules(),
              mol.params().totalMolecules());
}

TEST(EndToEnd, DeterministicAcrossRuns)
{
    auto run_once = [] {
        MolecularCache cache(
            fig5MolecularParams(1_MiB, PlacementPolicy::Randy, 5));
        for (u32 i = 0; i < 4; ++i)
            cache.registerApplication(Asid{static_cast<u16>(i)}, 0.1,
                                  ClusterId{0}, i, 1);
        const SimResult r =
            runWorkload(spec4Names(), cache,
                        RunOptions{}
                            .withGoals(GoalSet::uniform(0.1, 4))
                            .withReferences(100000)
                            .withSeed(5));
        return std::make_pair(r.qos.averageDeviation, r.misses);
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace molcache
