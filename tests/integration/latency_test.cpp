/**
 * @file
 * Latency-accounting tests across the three cache models: the costs the
 * paper names (ASID pipeline stage, Ulmo hops on tile misses) must show
 * up in AMAT exactly as configured.
 */

#include <gtest/gtest.h>

#include "cache/set_assoc.hpp"
#include "cache/way_partitioned.hpp"
#include "core/molecular_cache.hpp"
#include "core/sim_access.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

MemAccess
read(Addr addr, u16 asid = 0)
{
    return {addr, Asid{asid}, AccessType::Read};
}

TEST(Latency, SetAssocHitAndMiss)
{
    SetAssocParams p;
    p.sizeBytes = 8_KiB;
    p.associativity = 2;
    p.hitLatencyCycles = Cycles{3};
    p.missPenaltyCycles = Cycles{100};
    SetAssocCache cache(p);
    EXPECT_EQ(cache.access(read(0x0)).latencyCycles, Cycles{103});
    EXPECT_EQ(cache.access(read(0x0)).latencyCycles, Cycles{3});
    EXPECT_EQ(cache.stats().forAsid(Asid{0}).latencyCycles, Cycles{106});
    EXPECT_DOUBLE_EQ(cache.stats().forAsid(Asid{0}).amat(), 53.0);
}

TEST(Latency, WayPartitionedHitAndMiss)
{
    WayPartitionedParams p;
    p.sizeBytes = 64_KiB;
    p.associativity = 8;
    p.hitLatencyCycles = Cycles{2};
    p.missPenaltyCycles = Cycles{50};
    WayPartitionedCache cache(p);
    cache.registerApplication(Asid{0}, 0.1);
    EXPECT_EQ(cache.access(read(0x0)).latencyCycles, Cycles{52});
    EXPECT_EQ(cache.access(read(0x0)).latencyCycles, Cycles{2});
}

TEST(Latency, MolecularAsidStageOnLocalHit)
{
    MolecularCacheParams p;
    p.moleculeSize = 8_KiB;
    p.moleculesPerTile = 8;
    p.tilesPerCluster = 2;
    p.clusters = 1;
    p.initialAllocation = InitialAllocation::Small;
    p.resizePeriod = 1u << 30;
    p.maxResizePeriod = 1u << 30;
    p.asidStageCycles = Cycles{1};
    p.moleculeAccessCycles = Cycles{2};
    p.missPenaltyCycles = Cycles{100};
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.1);
    // Miss: ASID stage + molecule + memory penalty.
    EXPECT_EQ(cache.access(read(0x0)).latencyCycles, Cycles{103});
    // Local hit: ASID stage + molecule access — the paper's extra cycle.
    EXPECT_EQ(cache.access(read(0x0)).latencyCycles, Cycles{3});
}

TEST(Latency, MolecularRemoteHitPaysUlmoHop)
{
    MolecularCacheParams p;
    p.moleculeSize = 8_KiB;
    p.moleculesPerTile = 8;
    p.tilesPerCluster = 2;
    p.clusters = 1;
    p.initialAllocation = InitialAllocation::Small;
    p.resizePeriod = 1u << 30;
    p.maxResizePeriod = 1u << 30;
    p.asidStageCycles = Cycles{1};
    p.moleculeAccessCycles = Cycles{1};
    p.ulmoHopCycles = Cycles{5};
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.1, ClusterId{0}, 0, 1);
    cache.access(read(0x4000)); // fill on tile 0
    // Move the entry point: the line is now remote.
    SimAccess{cache}.migrateApplication(Asid{0}, ClusterId{0}, 1);
    const AccessResult r = cache.access(read(0x4000));
    ASSERT_TRUE(r.hit);
    ASSERT_EQ(r.level, 1u);
    // home visit (1+1) + one remote tile (5 + 1 + 1).
    EXPECT_EQ(r.latencyCycles, Cycles{9});
}

TEST(Latency, AmatReflectsMissRate)
{
    SetAssocParams p;
    p.sizeBytes = 8_KiB;
    p.associativity = 2;
    SetAssocCache cache(p);
    for (int i = 0; i < 100; ++i)
        cache.access(read(0x0));
    // 1 miss (201 cycles) + 99 hits (1 cycle): AMAT ~= 3.
    EXPECT_NEAR(cache.stats().global().amat(), 3.0, 0.01);
}

} // namespace
} // namespace molcache
