/**
 * @file
 * Integration tests for Algorithm 1's emergent behaviour on real
 * workload profiles: overachievers shrink, hopeful partitions grow,
 * thrashing partitions are capped, and the free pool is respected.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

namespace molcache {
namespace {

constexpr u64 kRefs = 600000;

/**
 * Fig-5 geometry with the adaptive period capped: a solo overachiever
 * keeps the global miss rate under its goal, so the paper's doubling
 * rule would stretch the period toward maxResizePeriod and convergence
 * would need a multi-million-reference trace.  Capping the period keeps
 * these mechanism tests short without changing the mechanism.
 */
MolecularCacheParams
cappedParams(Bytes size, PlacementPolicy placement)
{
    MolecularCacheParams p = fig5MolecularParams(size, placement);
    p.maxResizePeriod = 20000;
    return p;
}

TEST(ResizeBehaviour, OverachieverShrinksTowardGoal)
{
    MolecularCache cache(cappedParams(2_MiB, PlacementPolicy::Randy));
    cache.registerApplication(Asid{0}, 0.10, ClusterId{0}, 0, 1);
    const GoalSet goals = GoalSet::uniform(0.1, 1);
    // Warm through the shrink phase, then measure the equilibrium.
    auto src = makeMultiProgramSource({"ammp"}, kRefs);
    Simulator::run(*src, cache,
                   RunOptions{}.withGoals(goals).withWarmup(2 * kRefs / 3));
    // ammp started with half a tile (32 molecules) and must have given
    // most of it back, landing near its goal.  Tolerance is set by the
    // 8 KiB molecule quantum: ammp's working set straddles 1-3 molecules,
    // so its equilibrium oscillates around (not onto) the goal.
    EXPECT_LT(cache.region(Asid{0}).size(), 8u);
    EXPECT_NEAR(cache.stats().forAsid(Asid{0}).missRate(), 0.1, 0.08);
    EXPECT_GT(cache.stats().forAsid(Asid{0}).missRate(), 0.005);
}

TEST(ResizeBehaviour, ThrashingPartitionGetsCapped)
{
    MolecularCache cache(
        fig5MolecularParams(2_MiB, PlacementPolicy::Randy));
    cache.registerApplication(Asid{0}, 0.10, ClusterId{0}, 0, 1);
    runWorkload({"mcf"}, cache,
                RunOptions{}
                    .withGoals(GoalSet::uniform(0.1, 1))
                    .withReferences(kRefs));
    // mcf (32 MiB pointer chase) can never reach 10%; Algorithm 1 must
    // cap it at the allocation chunk instead of letting it take the
    // whole 2 MiB.
    EXPECT_LE(cache.region(Asid{0}).size(),
              2 * cache.params().maxAllocationChunk);
    EXPECT_GT(cache.freeMolecules(), cache.params().totalMolecules() / 2);
}

TEST(ResizeBehaviour, NeedyPartitionGrowsPastInitial)
{
    MolecularCache cache(
        fig5MolecularParams(4_MiB, PlacementPolicy::Randy));
    cache.registerApplication(Asid{0}, 0.10, ClusterId{0}, 0, 1);
    const u32 initial = cache.region(Asid{0}).size();
    runWorkload({"parser"}, cache,
                RunOptions{}
                    .withGoals(GoalSet::uniform(0.1, 1))
                    .withReferences(kRefs));
    // parser's ~600KB working set needs more than half a 1MB tile.
    EXPECT_GT(cache.region(Asid{0}).size(), initial);
}

TEST(ResizeBehaviour, GrantsNeverExceedPool)
{
    MolecularCache cache(
        fig5MolecularParams(1_MiB, PlacementPolicy::Randy));
    for (u32 i = 0; i < 4; ++i)
        cache.registerApplication(Asid{static_cast<u16>(i)}, 0.05,
                                  ClusterId{0}, i, 1);
    runWorkload(spec4Names(), cache,
                RunOptions{}
                    .withGoals(GoalSet::uniform(0.05, 4))
                    .withReferences(kRefs));
    u32 held = 0;
    for (u32 i = 0; i < 4; ++i)
        held += cache.region(Asid{static_cast<u16>(i)}).size();
    EXPECT_EQ(held + cache.freeMolecules(),
              cache.params().totalMolecules());
}

TEST(ResizeBehaviour, PerAppSchemeAlsoConverges)
{
    MolecularCacheParams p = cappedParams(2_MiB, PlacementPolicy::Randy);
    p.resizeScheme = ResizeScheme::PerAppAdaptive;
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.10, ClusterId{0}, 0, 1);
    auto src = makeMultiProgramSource({"ammp"}, kRefs);
    Simulator::run(*src, cache,
                   RunOptions{}
                       .withGoals(GoalSet::uniform(0.1, 1))
                       .withWarmup(2 * kRefs / 3));
    EXPECT_NEAR(cache.stats().forAsid(Asid{0}).missRate(), 0.1, 0.08);
    EXPECT_GT(cache.stats().forAsid(Asid{0}).missRate(), 0.005);
    EXPECT_GT(cache.resizeCycles(), 0u);
}

TEST(ResizeBehaviour, ConstantSchemeRunsOnFixedPeriod)
{
    MolecularCacheParams p =
        fig5MolecularParams(2_MiB, PlacementPolicy::Randy);
    p.resizeScheme = ResizeScheme::Constant;
    p.resizePeriod = 10000;
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.10, ClusterId{0}, 0, 1);
    runWorkload({"gzip"}, cache,
                RunOptions{}
                    .withGoals(GoalSet::uniform(0.1, 1))
                    .withReferences(100000));
    // Exactly one cycle per 10k accesses (within one boundary cycle).
    EXPECT_NEAR(static_cast<double>(cache.resizeCycles()), 10.0, 1.0);
}

TEST(ResizeBehaviour, RandomPolicyAlsoManagesPartitions)
{
    MolecularCache cache(cappedParams(2_MiB, PlacementPolicy::Random));
    cache.registerApplication(Asid{0}, 0.10, ClusterId{0}, 0, 1);
    runWorkload({"ammp"}, cache,
                RunOptions{}
                    .withGoals(GoalSet::uniform(0.1, 1))
                    .withReferences(kRefs));
    EXPECT_LT(cache.region(Asid{0}).size(), 8u);
    EXPECT_EQ(cache.region(Asid{0}).rowMax(), 1u); // single replacement row
}

} // namespace
} // namespace molcache
