/**
 * @file
 * Integration tests for the Table 1 phenomenon: per-application miss
 * rates on a shared cache depend on the co-runner mix, while molecular
 * partitions decouple them.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/experiment.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

namespace molcache {
namespace {

constexpr u64 kRefs = 400000;

double
sharedMissRate(const std::vector<std::string> &apps, size_t index)
{
    SetAssocCache cache(traditionalParams(1_MiB, 4));
    return runWorkload(apps, cache, RunOptions{}.withReferences(kRefs))
        .qos.byAsid(Asid{static_cast<u16>(index)})
        .missRate;
}

TEST(Interference, CoRunnersRaiseMissRates)
{
    const double alone = sharedMissRate({"parser"}, 0);
    const double with_mcf = sharedMissRate({"parser", "mcf"}, 0);
    const double all_four =
        sharedMissRate({"art", "mcf", "ammp", "parser"}, 3);
    EXPECT_GT(with_mcf, alone);
    EXPECT_GT(all_four, alone);
}

TEST(Interference, PartnerIdentityMatters)
{
    // Paper Table 1: parser suffers far more next to mcf than next to
    // ammp (0.247 vs 0.091).
    const double with_ammp = sharedMissRate({"parser", "ammp"}, 0);
    const double with_mcf = sharedMissRate({"parser", "mcf"}, 0);
    EXPECT_GT(with_mcf, 1.5 * with_ammp);
}

TEST(Interference, AmmpIsInsensitive)
{
    // ammp's tiny working set survives any mix (paper: 0.008 -> 0.013).
    const double alone = sharedMissRate({"ammp"}, 0);
    const double all_four =
        sharedMissRate({"art", "mcf", "ammp", "parser"}, 2);
    EXPECT_LT(alone, 0.03);
    EXPECT_LT(all_four, 0.06);
}

TEST(Interference, McfIsUniformlyBad)
{
    // mcf misses heavily no matter what runs beside it (paper: 0.67-0.70).
    const double alone = sharedMissRate({"mcf"}, 0);
    const double paired = sharedMissRate({"mcf", "art"}, 0);
    EXPECT_GT(alone, 0.5);
    EXPECT_GT(paired, 0.5);
    EXPECT_LT(std::fabs(paired - alone), 0.2);
}

TEST(Interference, MolecularPartitionsDecoupleMissRates)
{
    // In the molecular cache each application has a private region, so
    // parser's miss rate with/without mcf must stay nearly identical
    // (same total capacity per app: fixed tiles, no resizing pressure
    // differences matter at this working-set scale).
    auto molecular_mr = [&](const std::vector<std::string> &apps,
                            size_t index) {
        MolecularCacheParams p =
            fig5MolecularParams(2_MiB, PlacementPolicy::Randy);
        p.maxResizePeriod = 20000; // comparable resize cadence solo/mixed
        MolecularCache cache(p);
        for (u32 i = 0; i < apps.size(); ++i)
            cache.registerApplication(Asid{static_cast<u16>(i)}, 0.1,
                                  ClusterId{0}, i, 1);
        auto src = makeMultiProgramSource(apps, 2 * kRefs);
        return Simulator::run(*src, cache,
                              RunOptions{}
                                  .withGoals(GoalSet::uniform(
                                      0.1, apps.size()))
                                  .withWarmup(kRefs))
            .qos.byAsid(Asid{static_cast<u16>(index)})
            .missRate;
    };
    const double ammp_alone = molecular_mr({"ammp"}, 0);
    const double ammp_with_mcf = molecular_mr({"ammp", "mcf"}, 0);
    // Both steer toward the 10% goal regardless of the co-runner.
    EXPECT_NEAR(ammp_alone, ammp_with_mcf, 0.05);
}

} // namespace
} // namespace molcache
