/**
 * @file
 * Adversarial-workload integration suite (ctest label: adversarial).
 *
 * Runs the guardian-on control plane against the four-application mix
 * from workload/adversarial.hpp and asserts the QoS guardian's
 * acceptance properties end to end:
 *  - the hog's unreachable goal is flagged Infeasible with a reported
 *    shortfall (admission control);
 *  - observed delta sign flips stay within the configured bound
 *    (oscillation detector);
 *  - no region ends below its capacity floor (fairness);
 *  - nothing is stuck past the watchdog budget — the phase-flipper
 *    re-converges after every phase change.
 */

#include <gtest/gtest.h>

#include "core/guardian.hpp"
#include "core/molecular_cache.hpp"
#include "sim/simulator.hpp"
#include "workload/adversarial.hpp"

namespace molcache {
namespace {

constexpr u64 kRefs = 600'000;
constexpr u32 kFloor = 2;

const std::vector<AdversaryKind> kMix = {
    AdversaryKind::PhaseFlip,
    AdversaryKind::Hog,
    AdversaryKind::Bursty,
    AdversaryKind::Steady,
};

struct Drill
{
    MolecularCacheParams params;
    std::unique_ptr<MolecularCache> cache;
    SimResult result;
};

/** One guardian-on run over the 2 MiB default geometry the adversary
 * footprints are tuned against; shared by every assertion below. */
const Drill &
drill()
{
    static const Drill d = [] {
        Drill out;
        out.params.resizeScheme = ResizeScheme::PerAppAdaptive;
        out.params.guardian.enabled = true;
        out.params.guardian.floorMolecules = kFloor;
        out.cache = std::make_unique<MolecularCache>(out.params);

        GoalSet goals;
        std::vector<std::string> names;
        for (size_t i = 0; i < kMix.size(); ++i) {
            const Asid asid{static_cast<u16>(i)};
            const double goal =
                kMix[i] == AdversaryKind::Hog ? 0.02 : 0.1;
            goals.set(asid, goal);
            out.cache->registerApplication(asid, goal);
            names.push_back(adversaryKindName(kMix[i]));
        }
        auto source = makeAdversarialSource(kMix, kRefs, /*seed=*/1);
        out.result = Simulator::run(*source, *out.cache,
                                    RunOptions{}
                                        .withGoals(goals)
                                        .withLabels(labelMap(names)));
        return out;
    }();
    return d;
}

const GuardianAppTelemetry &
telemetryOf(AdversaryKind kind)
{
    for (size_t i = 0; i < kMix.size(); ++i) {
        if (kMix[i] != kind)
            continue;
        const AppSummary *app =
            drill().result.qos.find(Asid{static_cast<u16>(i)});
        EXPECT_NE(app, nullptr);
        EXPECT_TRUE(app->guardian.has_value());
        return *app->guardian;
    }
    static const GuardianAppTelemetry none{};
    return none;
}

TEST(Adversarial, GuardianTelemetrySurfacesThroughSimResult)
{
    const SimResult &r = drill().result;
    EXPECT_TRUE(r.guardian.enabled);
    EXPECT_EQ(r.qos.apps.size(), kMix.size());
    for (const AppSummary &app : r.qos.apps)
        EXPECT_TRUE(app.guardian.has_value()) << app.label;
}

TEST(Adversarial, HogGoalFlaggedInfeasibleWithShortfall)
{
    const GuardianAppTelemetry &hog = telemetryOf(AdversaryKind::Hog);
    EXPECT_EQ(hog.verdict, FeasibilityVerdict::Infeasible);
    EXPECT_GT(hog.shortfall, 0.0);
    EXPECT_GE(drill().result.guardian.infeasibleRegions, 1u);
    EXPECT_GE(drill().result.guardian.maxShortfall, hog.shortfall);
}

TEST(Adversarial, SignFlipsStayWithinConfiguredBound)
{
    const u32 bound = drill().params.guardian.maxSignFlips;
    for (size_t i = 0; i < kMix.size(); ++i) {
        const AppSummary *app =
            drill().result.qos.find(Asid{static_cast<u16>(i)});
        ASSERT_NE(app, nullptr);
        ASSERT_TRUE(app->guardian.has_value());
        EXPECT_LE(app->guardian->maxSignFlips, bound) << app->label;
    }
}

TEST(Adversarial, NoRegionEndsBelowItsFloor)
{
    for (size_t i = 0; i < kMix.size(); ++i) {
        const Region &region =
            drill().cache->region(Asid{static_cast<u16>(i)});
        EXPECT_GE(region.size(), kFloor) << adversaryKindName(kMix[i]);
    }
}

TEST(Adversarial, NothingStuckPastTheWatchdogBudget)
{
    EXPECT_EQ(drill().result.guardian.stuckRegions, 0u);
    const GuardianAppTelemetry &flip =
        telemetryOf(AdversaryKind::PhaseFlip);
    EXPECT_FALSE(flip.stuck);
    // The phase-flipper crossed its goal at least once and re-converged
    // within the watchdog budget after each inversion.
    EXPECT_LE(flip.maxEpochsToGoal,
              drill().params.guardian.watchdogEpochs);
}

TEST(Adversarial, WellBehavedVictimStaysFeasible)
{
    const GuardianAppTelemetry &steady =
        telemetryOf(AdversaryKind::Steady);
    EXPECT_NE(steady.verdict, FeasibilityVerdict::Infeasible);
    EXPECT_DOUBLE_EQ(steady.shortfall, 0.0);
    EXPECT_FALSE(steady.stuck);
}

} // namespace
} // namespace molcache
