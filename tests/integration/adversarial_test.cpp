/**
 * @file
 * Adversarial-workload integration suite (ctest label: adversarial).
 *
 * Runs the guardian-on control plane against the four-application mix
 * from workload/adversarial.hpp and asserts the QoS guardian's
 * acceptance properties end to end:
 *  - the hog's unreachable goal is flagged Infeasible with a reported
 *    shortfall (admission control);
 *  - observed delta sign flips stay within the configured bound
 *    (oscillation detector);
 *  - no region ends below its capacity floor (fairness);
 *  - nothing is stuck past the watchdog budget — the phase-flipper
 *    re-converges after every phase change.
 */

#include <gtest/gtest.h>

#include "core/guardian.hpp"
#include "core/molecular_cache.hpp"
#include "sim/simulator.hpp"
#include "workload/adversarial.hpp"

namespace molcache {
namespace {

constexpr u64 kRefs = 600'000;
constexpr u32 kFloor = 2;

const std::vector<AdversaryKind> kMix = {
    AdversaryKind::PhaseFlip,
    AdversaryKind::Hog,
    AdversaryKind::Bursty,
    AdversaryKind::Steady,
};

struct Drill
{
    MolecularCacheParams params;
    std::unique_ptr<MolecularCache> cache;
    SimResult result;
};

/** One guardian-on run over the 2 MiB default geometry the adversary
 * footprints are tuned against; shared by every assertion below. */
const Drill &
drill()
{
    static const Drill d = [] {
        Drill out;
        out.params.resizeScheme = ResizeScheme::PerAppAdaptive;
        out.params.guardian.enabled = true;
        out.params.guardian.floorMolecules = kFloor;
        out.cache = std::make_unique<MolecularCache>(out.params);

        GoalSet goals;
        std::vector<std::string> names;
        for (size_t i = 0; i < kMix.size(); ++i) {
            const Asid asid{static_cast<u16>(i)};
            const double goal =
                kMix[i] == AdversaryKind::Hog ? 0.02 : 0.1;
            goals.set(asid, goal);
            out.cache->registerApplication(asid, goal);
            names.push_back(adversaryKindName(kMix[i]));
        }
        auto source = makeAdversarialSource(kMix, kRefs, /*seed=*/1);
        out.result = Simulator::run(*source, *out.cache,
                                    RunOptions{}
                                        .withGoals(goals)
                                        .withLabels(labelMap(names)));
        return out;
    }();
    return d;
}

const GuardianAppTelemetry &
telemetryOf(AdversaryKind kind)
{
    for (size_t i = 0; i < kMix.size(); ++i) {
        if (kMix[i] != kind)
            continue;
        const AppSummary *app =
            drill().result.qos.find(Asid{static_cast<u16>(i)});
        EXPECT_NE(app, nullptr);
        EXPECT_TRUE(app->guardian.has_value());
        return *app->guardian;
    }
    static const GuardianAppTelemetry none{};
    return none;
}

TEST(Adversarial, GuardianTelemetrySurfacesThroughSimResult)
{
    const SimResult &r = drill().result;
    EXPECT_TRUE(r.guardian.enabled);
    EXPECT_EQ(r.qos.apps.size(), kMix.size());
    for (const AppSummary &app : r.qos.apps)
        EXPECT_TRUE(app.guardian.has_value()) << app.label;
}

TEST(Adversarial, HogGoalFlaggedInfeasibleWithShortfall)
{
    const GuardianAppTelemetry &hog = telemetryOf(AdversaryKind::Hog);
    EXPECT_EQ(hog.verdict, FeasibilityVerdict::Infeasible);
    EXPECT_GT(hog.shortfall, 0.0);
    EXPECT_GE(drill().result.guardian.infeasibleRegions, 1u);
    EXPECT_GE(drill().result.guardian.maxShortfall, hog.shortfall);
}

TEST(Adversarial, SignFlipsStayWithinConfiguredBound)
{
    const u32 bound = drill().params.guardian.maxSignFlips;
    for (size_t i = 0; i < kMix.size(); ++i) {
        const AppSummary *app =
            drill().result.qos.find(Asid{static_cast<u16>(i)});
        ASSERT_NE(app, nullptr);
        ASSERT_TRUE(app->guardian.has_value());
        EXPECT_LE(app->guardian->maxSignFlips, bound) << app->label;
    }
}

TEST(Adversarial, NoRegionEndsBelowItsFloor)
{
    for (size_t i = 0; i < kMix.size(); ++i) {
        const Region &region =
            drill().cache->region(Asid{static_cast<u16>(i)});
        EXPECT_GE(region.size(), kFloor) << adversaryKindName(kMix[i]);
    }
}

TEST(Adversarial, NothingStuckPastTheWatchdogBudget)
{
    EXPECT_EQ(drill().result.guardian.stuckRegions, 0u);
    const GuardianAppTelemetry &flip =
        telemetryOf(AdversaryKind::PhaseFlip);
    EXPECT_FALSE(flip.stuck);
    // The phase-flipper crossed its goal at least once and re-converged
    // within the watchdog budget after each inversion.
    EXPECT_LE(flip.maxEpochsToGoal,
              drill().params.guardian.watchdogEpochs);
}

TEST(Adversarial, WellBehavedVictimStaysFeasible)
{
    const GuardianAppTelemetry &steady =
        telemetryOf(AdversaryKind::Steady);
    EXPECT_NE(steady.verdict, FeasibilityVerdict::Infeasible);
    EXPECT_DOUBLE_EQ(steady.shortfall, 0.0);
    EXPECT_FALSE(steady.stuck);
}

// ---------------------------------------------------------------------
// Predictive-apportioning acceptance drill (docs/algorithm1.md,
// "Predictive mode & hint trust").  The same mix and geometry run in
// four configurations; the assertions below pin the ISSUE's acceptance
// criteria so a regression in the hint path fails here before it fails
// in the CI bench gate.

constexpr size_t kPhaseFlipSlot = 0;

struct PredictiveRun
{
    SimResult result;
    /** Grant + withdraw molecule churn over the whole run. */
    u64 churn = 0;
};

/** @param predictive guardian predictive mode on
 *  @param hinted     phase-structured tenants emit hints
 *  @param invert     every hinting tenant lies (inverted sign) */
PredictiveRun
runPredictiveDrill(bool predictive, bool hinted, bool invert)
{
    MolecularCacheParams p;
    p.resizeScheme = ResizeScheme::PerAppAdaptive;
    p.guardian.enabled = true;
    p.guardian.floorMolecules = kFloor;
    p.guardian.predictive.enabled = predictive;

    GoalSet goals;
    MolecularCache cache(p);
    std::vector<std::string> names;
    for (size_t i = 0; i < kMix.size(); ++i) {
        const Asid asid{static_cast<u16>(i)};
        const double goal = kMix[i] == AdversaryKind::Hog ? 0.02 : 0.1;
        goals.set(asid, goal);
        cache.registerApplication(asid, goal);
        names.push_back(adversaryKindName(kMix[i]));
    }

    std::vector<HintPolicy> hints(kMix.size());
    for (size_t i = 0; hinted && i < kMix.size(); ++i) {
        if (kMix[i] != AdversaryKind::PhaseFlip &&
            kMix[i] != AdversaryKind::Bursty)
            continue;
        hints[i].enabled = true;
        hints[i].leadAccesses = 12'000;
        hints[i].confidence = 0.9;
        hints[i].invertPhase = invert;
    }

    auto source = makeAdversarialSource(kMix, hints, kRefs, /*seed=*/1);
    PredictiveRun out;
    out.result = Simulator::run(*source, cache,
                                RunOptions{}
                                    .withGoals(goals)
                                    .withLabels(labelMap(names)));
    out.churn = cache.resizer().granted() + cache.resizer().withdrawn();
    return out;
}

const PredictiveRun &
reactiveRun()
{
    static const PredictiveRun r = runPredictiveDrill(false, false, false);
    return r;
}

const PredictiveRun &
honestRun()
{
    static const PredictiveRun r = runPredictiveDrill(true, true, false);
    return r;
}

const PredictiveRun &
wrongHintsRun()
{
    static const PredictiveRun r = runPredictiveDrill(true, true, true);
    return r;
}

TEST(Adversarial, HonestHintsBeatReactiveOnTimeOutsideGoal)
{
    const GuardianSummary &honest = honestRun().result.guardian;
    EXPECT_TRUE(honest.predictiveEnabled);
    EXPECT_GT(honest.hintsHonored, 0u);
    EXPECT_LT(honest.accessesOutsideGoal,
              reactiveRun().result.guardian.accessesOutsideGoal);
}

TEST(Adversarial, WrongHintsDegradeGracefullyWithinTenPercent)
{
    // Graceful fallback, not amplification: with every hinting tenant
    // lying, both time-outside-goal and capacity churn stay within 10%
    // of the reactive baseline.
    const GuardianSummary &reactive = reactiveRun().result.guardian;
    const GuardianSummary &wrong = wrongHintsRun().result.guardian;
    EXPECT_LE(static_cast<double>(wrong.accessesOutsideGoal),
              1.1 * static_cast<double>(reactive.accessesOutsideGoal));
    EXPECT_LE(static_cast<double>(wrongHintsRun().churn),
              1.1 * static_cast<double>(reactiveRun().churn));
}

TEST(Adversarial, LyingTenantEndsQuarantinedInTelemetry)
{
    const SimResult &r = wrongHintsRun().result;
    const AppSummary *liar =
        r.qos.find(Asid{static_cast<u16>(kPhaseFlipSlot)});
    ASSERT_NE(liar, nullptr);
    ASSERT_TRUE(liar->guardian.has_value());
    EXPECT_TRUE(liar->guardian->quarantined);
    EXPECT_GE(liar->guardian->quarantineEvents, 1u);
    const MolecularCacheParams defaults;
    EXPECT_LT(liar->guardian->trust,
              defaults.guardian.predictive.quarantineBelow);
    EXPECT_GE(r.guardian.quarantinedRegions, 1u);
    EXPECT_LE(r.guardian.minTrust, liar->guardian->trust);
}

TEST(Adversarial, NoContractViolationsInAnyPredictiveMode)
{
    EXPECT_EQ(reactiveRun().result.contractViolations, 0u);
    EXPECT_EQ(honestRun().result.contractViolations, 0u);
    EXPECT_EQ(wrongHintsRun().result.contractViolations, 0u);
}

TEST(Adversarial, PredictiveOffIgnoresTheHintSideBandByteIdentically)
{
    // Hints flowing with predictive mode off must change *nothing*: the
    // address stream is hint-invariant by construction and the guardian
    // drops the hint before touching any state.
    const PredictiveRun hinted = runPredictiveDrill(false, true, false);
    const PredictiveRun &bare = reactiveRun();
    EXPECT_EQ(hinted.result.qos.globalMissRate,
              bare.result.qos.globalMissRate);
    EXPECT_EQ(hinted.result.guardian.accessesOutsideGoal,
              bare.result.guardian.accessesOutsideGoal);
    EXPECT_EQ(hinted.result.guardian.epochsOutsideGoal,
              bare.result.guardian.epochsOutsideGoal);
    EXPECT_EQ(hinted.churn, bare.churn);
    EXPECT_EQ(hinted.result.guardian.hintsSeen, 0u);
    EXPECT_FALSE(hinted.result.guardian.predictiveEnabled);
}

} // namespace
} // namespace molcache
