/**
 * @file
 * Cross-model equivalence properties: in degenerate configurations the
 * three cache models must agree, which pins down their shared semantics.
 *
 *  - a 1-molecule region is a direct-mapped cache of molecule size;
 *  - a way-partitioned cache with one registered app and no
 *    repartitioning is a plain LRU set-associative cache;
 *  - an N-molecule LruDirect region equals an N-way LRU cache with
 *    molecule-count sets... per index, which the direct-mapped
 *    equivalence below covers for N=1.
 */

#include <gtest/gtest.h>

#include "cache/set_assoc.hpp"
#include "cache/way_partitioned.hpp"
#include "core/molecular_cache.hpp"
#include "util/random.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace molcache {
namespace {

TEST(ModelEquivalence, OneMoleculeRegionIsDirectMapped)
{
    // Molecular cache pinned to one 8 KiB molecule vs an 8 KiB DM cache:
    // identical hit/miss sequences on an arbitrary stream.
    MolecularCacheParams mp;
    mp.moleculeSize = 8_KiB;
    mp.moleculesPerTile = 4;
    mp.tilesPerCluster = 1;
    mp.clusters = 1;
    mp.initialAllocation = InitialAllocation::Small;
    mp.initialMolecules = 1;
    mp.resizePeriod = 1u << 30; // frozen at one molecule
    mp.maxResizePeriod = 1u << 30;
    MolecularCache mol(mp);
    mol.registerApplication(Asid{0}, 0.1);
    ASSERT_EQ(mol.region(Asid{0}).size(), 1u);

    SetAssocParams sp;
    sp.sizeBytes = 8_KiB;
    sp.associativity = 1;
    SetAssocCache dm(sp);

    Pcg32 rng(123);
    for (u32 i = 0; i < 20000; ++i) {
        const Addr addr = static_cast<Addr>(rng.below(1u << 16)) * 64;
        const bool write = rng.chance(0.3);
        const MemAccess a{addr, Asid{0},
                          write ? AccessType::Write : AccessType::Read};
        ASSERT_EQ(mol.access(a).hit, dm.access(a).hit) << "step " << i;
    }
    EXPECT_EQ(mol.stats().global().misses, dm.stats().global().misses);
    EXPECT_EQ(mol.stats().global().writebacks,
              dm.stats().global().writebacks);
}

TEST(ModelEquivalence, SoloWayPartitionedIsPlainLru)
{
    WayPartitionedParams wp;
    wp.sizeBytes = 64_KiB;
    wp.associativity = 4;
    wp.repartitionPeriod = 0;
    WayPartitionedCache part(wp);
    part.registerApplication(Asid{0}, 0.1);

    SetAssocParams sp;
    sp.sizeBytes = 64_KiB;
    sp.associativity = 4;
    sp.replacement = ReplPolicy::Lru;
    SetAssocCache lru(sp);

    TraceGenerator gen(profileByName("gcc"), Asid{0}, 30000, 9);
    while (auto a = gen.next())
        ASSERT_EQ(part.access(*a).hit, lru.access(*a).hit);
    EXPECT_EQ(part.stats().global().misses, lru.stats().global().misses);
}

TEST(ModelEquivalence, PlacementPoliciesAgreeOnConflictFreeStreams)
{
    // With a working set that maps one line per molecule index, every
    // placement policy produces the same (perfect) hit behaviour.
    for (const auto policy :
         {PlacementPolicy::Random, PlacementPolicy::Randy,
          PlacementPolicy::LruDirect}) {
        MolecularCacheParams p;
        p.moleculeSize = 8_KiB;
        p.moleculesPerTile = 4;
        p.tilesPerCluster = 1;
        p.clusters = 1;
        p.placement = policy;
        p.initialAllocation = InitialAllocation::Small;
        p.initialMolecules = 2;
        p.resizePeriod = 1u << 30;
        p.maxResizePeriod = 1u << 30;
        MolecularCache cache(p);
        cache.registerApplication(Asid{0}, 0.1);
        for (u32 pass = 0; pass < 3; ++pass) {
            u32 misses = 0;
            for (Addr line = 0; line < 128; ++line) {
                if (!cache
                         .access({line * 64, Asid{0}, AccessType::Read})
                         .hit)
                    ++misses;
            }
            if (pass == 0)
                EXPECT_EQ(misses, 128u) << placementPolicyName(policy);
            else
                EXPECT_EQ(misses, 0u) << placementPolicyName(policy);
        }
    }
}

} // namespace
} // namespace molcache
