#include "noc/topology.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

NocParams
params(NocTopology t, u32 cyclesPerHop = 2, double energy = 0.15)
{
    NocParams p;
    p.topology = t;
    p.cyclesPerHop = cyclesPerHop;
    p.energyPerHopNj = energy;
    return p;
}

TEST(Noc, ParseAndName)
{
    EXPECT_EQ(parseNocTopology("ring"), NocTopology::Ring);
    EXPECT_EQ(parseNocTopology("mesh"), NocTopology::Mesh);
    EXPECT_EQ(parseNocTopology("crossbar"), NocTopology::Crossbar);
    EXPECT_EQ(nocTopologyName(NocTopology::Ring), "ring");
}

TEST(Noc, SelfMessagesAreFree)
{
    for (const auto t : {NocTopology::Crossbar, NocTopology::Ring,
                         NocTopology::Mesh}) {
        NocModel noc(4, params(t));
        EXPECT_EQ(noc.hopCount(2, 2), 0u) << nocTopologyName(t);
        EXPECT_EQ(noc.latencyCycles(2, 2), 0u);
    }
}

TEST(Noc, CrossbarIsOneHop)
{
    NocModel noc(8, params(NocTopology::Crossbar));
    for (u32 a = 0; a < 8; ++a)
        for (u32 b = 0; b < 8; ++b)
            if (a != b)
                EXPECT_EQ(noc.hopCount(a, b), 1u);
    EXPECT_EQ(noc.diameter(), 1u);
}

TEST(Noc, RingTakesTheShortWay)
{
    NocModel noc(6, params(NocTopology::Ring));
    EXPECT_EQ(noc.hopCount(0, 1), 1u);
    EXPECT_EQ(noc.hopCount(0, 3), 3u);
    EXPECT_EQ(noc.hopCount(0, 5), 1u); // wrap-around
    EXPECT_EQ(noc.hopCount(1, 5), 2u);
    EXPECT_EQ(noc.diameter(), 3u);
}

TEST(Noc, MeshUsesManhattanDistance)
{
    // 4 clusters => 2x2 mesh: corners are 2 hops apart.
    NocModel noc(4, params(NocTopology::Mesh));
    EXPECT_EQ(noc.hopCount(0, 1), 1u);
    EXPECT_EQ(noc.hopCount(0, 2), 1u);
    EXPECT_EQ(noc.hopCount(0, 3), 2u);
    EXPECT_EQ(noc.diameter(), 2u);

    // 9 clusters => 3x3 mesh: opposite corners are 4 hops.
    NocModel mesh9(9, params(NocTopology::Mesh));
    EXPECT_EQ(mesh9.hopCount(0, 8), 4u);
    EXPECT_EQ(mesh9.diameter(), 4u);
}

TEST(Noc, SymmetricDistances)
{
    for (const auto t : {NocTopology::Crossbar, NocTopology::Ring,
                         NocTopology::Mesh}) {
        NocModel noc(7, params(t));
        for (u32 a = 0; a < 7; ++a)
            for (u32 b = 0; b < 7; ++b)
                EXPECT_EQ(noc.hopCount(a, b), noc.hopCount(b, a))
                    << nocTopologyName(t);
    }
}

TEST(Noc, CostsScaleWithHops)
{
    NocModel noc(6, params(NocTopology::Ring, 3, 0.5));
    EXPECT_EQ(noc.latencyCycles(0, 3), 9u);
    EXPECT_DOUBLE_EQ(noc.messageEnergyNj(0, 3), 1.5);
}

TEST(Noc, StatsAccumulate)
{
    NocModel noc(4, params(NocTopology::Ring, 2, 0.25));
    EXPECT_EQ(noc.sendMessage(0, 2), 4u); // 2 hops x 2 cycles
    EXPECT_EQ(noc.sendMessage(0, 1), 2u);
    EXPECT_EQ(noc.stats().messages, 2u);
    EXPECT_EQ(noc.stats().hops, 3u);
    EXPECT_EQ(noc.stats().cycles, 6u);
    EXPECT_DOUBLE_EQ(noc.stats().energyNj, 0.75);
    noc.resetStats();
    EXPECT_EQ(noc.stats().messages, 0u);
}

TEST(Noc, SingleClusterDegenerate)
{
    NocModel noc(1, params(NocTopology::Mesh));
    EXPECT_EQ(noc.diameter(), 0u);
    EXPECT_EQ(noc.sendMessage(0, 0), 0u);
}

} // namespace
} // namespace molcache
