#include "stats/running_stats.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    // Sample variance of this classic sequence is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, Reset)
{
    RunningStats s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

} // namespace
} // namespace molcache
