#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace molcache {
namespace {

TEST(TimeSeries, SamplesAndAccess)
{
    TimeSeries ts({"a", "b"});
    EXPECT_EQ(ts.samples(), 0u);
    EXPECT_EQ(ts.columns(), 2u);
    ts.sample(10, {1.0, 2.0});
    ts.sample(20, {3.0, 4.0});
    EXPECT_EQ(ts.samples(), 2u);
    EXPECT_EQ(ts.tickAt(0), 10u);
    EXPECT_EQ(ts.tickAt(1), 20u);
    EXPECT_DOUBLE_EQ(ts.valueAt(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(1, 1), 4.0);
    EXPECT_DOUBLE_EQ(ts.latest(0), 3.0);
    EXPECT_DOUBLE_EQ(ts.latest(1), 4.0);
}

TEST(TimeSeries, CsvFormat)
{
    TimeSeries ts({"x"});
    ts.sample(0, {0.5});
    ts.sample(100, {1.5});
    std::ostringstream os;
    ts.writeCsv(os);
    EXPECT_EQ(os.str(), "tick,x\n0,0.5\n100,1.5\n");
}

TEST(TimeSeries, EqualTicksAllowed)
{
    TimeSeries ts({"x"});
    ts.sample(5, {1.0});
    ts.sample(5, {2.0});
    EXPECT_EQ(ts.samples(), 2u);
}

TEST(TimeSeriesDeath, WrongWidth)
{
    TimeSeries ts({"a", "b"});
    EXPECT_DEATH(ts.sample(0, {1.0}), "width");
}

TEST(TimeSeriesDeath, DecreasingTick)
{
    TimeSeries ts({"a"});
    ts.sample(10, {1.0});
    EXPECT_DEATH(ts.sample(5, {2.0}), "non-decreasing");
}

TEST(TimeSeriesDeath, OutOfRange)
{
    TimeSeries ts({"a"});
    ts.sample(0, {1.0});
    EXPECT_DEATH(ts.valueAt(0, 1), "out of range");
    EXPECT_DEATH(ts.valueAt(1, 0), "out of range");
}

} // namespace
} // namespace molcache
