#include "stats/json.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace molcache {
namespace {

TEST(Json, EmptyObject)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.endObject();
    }
    EXPECT_EQ(os.str(), "{}");
}

TEST(Json, ObjectWithValues)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.key("name");
        w.value("molcache");
        w.key("count");
        w.value(static_cast<u64>(3));
        w.key("rate");
        w.value(0.5);
        w.key("ok");
        w.value(true);
        w.endObject();
    }
    const std::string s = os.str();
    EXPECT_NE(s.find("\"name\": \"molcache\""), std::string::npos);
    EXPECT_NE(s.find("\"count\": 3"), std::string::npos);
    EXPECT_NE(s.find("\"rate\": 0.5"), std::string::npos);
    EXPECT_NE(s.find("\"ok\": true"), std::string::npos);
}

TEST(Json, NestedArray)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.key("xs");
        w.beginArray();
        w.value(static_cast<i64>(1));
        w.value(static_cast<i64>(2));
        w.endArray();
        w.endObject();
    }
    const std::string s = os.str();
    EXPECT_NE(s.find('['), std::string::npos);
    EXPECT_NE(s.find(']'), std::string::npos);
    // Both elements present, comma separated.
    EXPECT_NE(s.find('1'), std::string::npos);
    EXPECT_NE(s.find('2'), std::string::npos);
    EXPECT_NE(s.find(','), std::string::npos);
}

TEST(Json, StringEscaping)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.value(std::string("a\"b\\c\nd"));
    }
    EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, NonFiniteBecomesNull)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginArray();
        w.value(std::numeric_limits<double>::quiet_NaN());
        w.value(std::numeric_limits<double>::infinity());
        w.endArray();
    }
    const std::string s = os.str();
    EXPECT_NE(s.find("null"), std::string::npos);
    EXPECT_EQ(s.find("nan"), std::string::npos);
    EXPECT_EQ(s.find("inf"), std::string::npos);
}

TEST(Json, ParsesBackWithNaiveCheck)
{
    // Round-trip smoke: balanced braces/brackets and quote count even.
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.key("arr");
        w.beginArray();
        for (int i = 0; i < 3; ++i) {
            w.beginObject();
            w.key("i");
            w.value(static_cast<i64>(i));
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    const std::string s = os.str();
    int depth = 0;
    int quotes = 0;
    for (const char c : s) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        if (c == '"')
            ++quotes;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(quotes % 2, 0);
}

} // namespace
} // namespace molcache
