#include "stats/counter.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

TEST(Counter, BasicIncrement)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    c.increment(4);
    EXPECT_EQ(c.value(), 5u);
}

TEST(Counter, Intervals)
{
    Counter c;
    c.increment(10);
    EXPECT_EQ(c.intervalValue(), 10u);
    EXPECT_EQ(c.takeInterval(), 10u);
    EXPECT_EQ(c.intervalValue(), 0u);
    c.increment(3);
    EXPECT_EQ(c.intervalValue(), 3u);
    EXPECT_EQ(c.takeInterval(), 3u);
    EXPECT_EQ(c.value(), 13u); // lifetime value unaffected by intervals
}

TEST(Counter, Reset)
{
    Counter c;
    c.increment(7);
    c.takeInterval();
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(c.intervalValue(), 0u);
}

TEST(Ratio, Basics)
{
    EXPECT_DOUBLE_EQ(ratio(1, 2), 0.5);
    EXPECT_DOUBLE_EQ(ratio(0, 5), 0.0);
    EXPECT_DOUBLE_EQ(ratio(5, 0), 0.0); // divide-by-zero yields 0
}

} // namespace
} // namespace molcache
