#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

TEST(LinearHistogram, BucketPlacement)
{
    LinearHistogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(9.99);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogram, OutOfRangeClamps)
{
    LinearHistogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(15.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
}

TEST(LinearHistogram, WeightedAdd)
{
    LinearHistogram h(0.0, 1.0, 2);
    h.add(0.25, 10);
    EXPECT_EQ(h.bucketCount(0), 10u);
    EXPECT_EQ(h.total(), 10u);
}

TEST(LinearHistogram, Quantile)
{
    LinearHistogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
    EXPECT_NEAR(h.quantile(0.0), 0.5, 1.0);
}

TEST(Log2Histogram, Buckets)
{
    Log2Histogram h(10);
    h.add(0); // bucket 0
    h.add(1); // (2^0..2^1) -> bucket 1
    h.add(2);
    h.add(3); // bucket 2
    h.add(1024);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Log2Histogram, OverflowClampsToLast)
{
    Log2Histogram h(4);
    h.add(1ull << 40);
    EXPECT_EQ(h.bucketCount(h.buckets() - 1), 1u);
}

TEST(LinearHistogram, ToStringSkipsEmpty)
{
    LinearHistogram h(0.0, 10.0, 10);
    h.add(1.5);
    const std::string s = h.toString();
    EXPECT_NE(s.find("1"), std::string::npos);
    EXPECT_EQ(s.find("\n\n"), std::string::npos);
}

} // namespace
} // namespace molcache
