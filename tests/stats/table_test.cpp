#include "stats/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace molcache {
namespace {

TEST(Table, CellsAndDimensions)
{
    TablePrinter t({"a", "b"});
    EXPECT_EQ(t.columns(), 2u);
    EXPECT_EQ(t.rows(), 0u);
    const size_t r = t.addRow();
    t.cell(r, 0, "x");
    t.cell(r, 1, 3.14159, 2);
    EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, PrintAligned)
{
    TablePrinter t({"name", "value"});
    t.row({"long-name-here", "1"});
    t.row({"x", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("| name"), std::string::npos);
    EXPECT_NE(s.find("long-name-here"), std::string::npos);
    // Rules above and below the header plus trailing rule.
    size_t rules = 0;
    for (size_t pos = s.find("+-"); pos != std::string::npos;
         pos = s.find("+-", pos + 1))
        ++rules;
    EXPECT_GE(rules, 3u);
}

TEST(Table, PrintCsv)
{
    TablePrinter t({"h1", "h2"});
    t.row({"a", "b"});
    t.row({"c", "d"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "h1,h2\na,b\nc,d\n");
}

TEST(Table, NumericFormatting)
{
    TablePrinter t({"v"});
    const size_t r = t.addRow();
    t.cell(r, 0, 0.123456, 3);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("0.123"), std::string::npos);

    TablePrinter t2({"n"});
    const size_t r2 = t2.addRow();
    t2.cell(r2, 0, static_cast<u64>(42));
    std::ostringstream os2;
    t2.printCsv(os2);
    EXPECT_NE(os2.str().find("42"), std::string::npos);
}

TEST(TableDeath, WrongRowWidth)
{
    TablePrinter t({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "row width");
}

TEST(TableDeath, CellOutOfRange)
{
    TablePrinter t({"a"});
    EXPECT_DEATH(t.cell(0, 0, "no row yet"), "out of range");
}

} // namespace
} // namespace molcache
