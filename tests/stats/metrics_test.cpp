#include "stats/metrics.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

TEST(GoalSet, UniformAndLookup)
{
    const GoalSet g = GoalSet::uniform(0.25, 3);
    EXPECT_EQ(g.size(), 3u);
    EXPECT_TRUE(g.hasGoal(Asid{0}));
    EXPECT_TRUE(g.hasGoal(Asid{2}));
    EXPECT_FALSE(g.hasGoal(Asid{3}));
    EXPECT_DOUBLE_EQ(*g.goal(Asid{1}), 0.25);
    EXPECT_FALSE(g.goal(Asid{9}).has_value());
}

TEST(GoalSet, PerAsidOverride)
{
    GoalSet g;
    g.set(Asid{5}, 0.1);
    g.set(Asid{5}, 0.2); // overwrite
    EXPECT_DOUBLE_EQ(*g.goal(Asid{5}), 0.2);
}

TEST(Metrics, DeviationIsAbsolute)
{
    EXPECT_DOUBLE_EQ(deviationFromGoal(0.3, 0.1), 0.2);
    EXPECT_DOUBLE_EQ(deviationFromGoal(0.05, 0.1), 0.05);
    EXPECT_DOUBLE_EQ(deviationFromGoal(0.1, 0.1), 0.0);
}

TEST(Metrics, AverageDeviationSkipsGoallessApps)
{
    GoalSet g;
    g.set(Asid{0}, 0.1);
    g.set(Asid{1}, 0.1);
    // ASID 2 has a miss rate but no goal: must not enter the average.
    const std::map<Asid, double> rates = {
        {Asid{0}, 0.2}, {Asid{1}, 0.1}, {Asid{2}, 0.9}};
    EXPECT_DOUBLE_EQ(averageDeviation(rates, g), (0.1 + 0.0) / 2);
}

TEST(Metrics, AverageDeviationSkipsUnseenApps)
{
    GoalSet g;
    g.set(Asid{0}, 0.1);
    g.set(Asid{7}, 0.1); // never ran: no miss rate recorded
    const std::map<Asid, double> rates = {{Asid{0}, 0.3}};
    EXPECT_DOUBLE_EQ(averageDeviation(rates, g), 0.2);
}

TEST(Metrics, AverageDeviationEmpty)
{
    EXPECT_DOUBLE_EQ(averageDeviation({}, GoalSet{}), 0.0);
}

TEST(Metrics, HitPerMolecule)
{
    EXPECT_DOUBLE_EQ(hitPerMolecule(50, 100, 10), 0.05);
    EXPECT_DOUBLE_EQ(hitPerMolecule(0, 100, 10), 0.0);
    EXPECT_DOUBLE_EQ(hitPerMolecule(50, 100, 0), 0.0); // no molecules
    EXPECT_DOUBLE_EQ(hitPerMolecule(50, 0, 10), 0.0);  // no accesses
}

TEST(Metrics, PowerDeviationProduct)
{
    // Table 5 sanity: 7.66 W x 0.2468 deviation ~= the paper's 1.89.
    EXPECT_NEAR(powerDeviationProduct(7.66, 0.246843), 1.89, 0.01);
    EXPECT_DOUBLE_EQ(powerDeviationProduct(0.0, 0.5), 0.0);
}

TEST(GoalSetDeath, GoalOutOfRange)
{
    GoalSet g;
    EXPECT_DEATH(g.set(Asid{0}, 1.5), "goal out of");
}

} // namespace
} // namespace molcache
