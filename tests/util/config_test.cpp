#include "util/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace molcache {
namespace {

TEST(Config, FromTokens)
{
    const Config cfg = Config::fromTokens({"a=1", "b = hello", "c=2.5"});
    EXPECT_EQ(cfg.getInt("a"), 1);
    EXPECT_EQ(cfg.getString("b"), "hello");
    EXPECT_DOUBLE_EQ(cfg.getDouble("c"), 2.5);
}

TEST(Config, Defaults)
{
    const Config cfg = Config::fromTokens({"x=5"});
    EXPECT_EQ(cfg.getInt("x", 9), 5);
    EXPECT_EQ(cfg.getInt("missing", 9), 9);
    EXPECT_EQ(cfg.getString("missing", "dflt"), "dflt");
    EXPECT_DOUBLE_EQ(cfg.getDouble("missing", 0.5), 0.5);
    EXPECT_TRUE(cfg.getBool("missing", true));
    EXPECT_EQ(cfg.getSize("missing", 1024), 1024u);
}

TEST(Config, BoolValues)
{
    const Config cfg =
        Config::fromTokens({"t1=true", "t2=1", "t3=yes", "t4=on",
                            "f1=false", "f2=0", "f3=no", "f4=off"});
    for (const char *k : {"t1", "t2", "t3", "t4"})
        EXPECT_TRUE(cfg.getBool(k)) << k;
    for (const char *k : {"f1", "f2", "f3", "f4"})
        EXPECT_FALSE(cfg.getBool(k)) << k;
}

TEST(Config, SizeSuffixes)
{
    const Config cfg = Config::fromTokens(
        {"a=512", "b=8K", "c=2M", "d=1G", "e=64KiB", "f=3MB"});
    EXPECT_EQ(cfg.getSize("a"), 512u);
    EXPECT_EQ(cfg.getSize("b"), 8192u);
    EXPECT_EQ(cfg.getSize("c"), 2u << 20);
    EXPECT_EQ(cfg.getSize("d"), 1ull << 30);
    EXPECT_EQ(cfg.getSize("e"), 64u << 10);
    EXPECT_EQ(cfg.getSize("f"), 3u << 20);
}

TEST(Config, MergeOverwrites)
{
    Config base = Config::fromTokens({"a=1", "b=2"});
    const Config over = Config::fromTokens({"b=3", "c=4"});
    base.merge(over);
    EXPECT_EQ(base.getInt("a"), 1);
    EXPECT_EQ(base.getInt("b"), 3);
    EXPECT_EQ(base.getInt("c"), 4);
}

TEST(Config, FileWithCommentsAndBlanks)
{
    const std::string path = ::testing::TempDir() + "/molcache_cfg_test.cfg";
    {
        std::ofstream out(path);
        out << "# a comment\n"
            << "\n"
            << "alpha = 10\n"
            << "beta = text value # trailing comment\n";
    }
    const Config cfg = Config::fromFile(path);
    EXPECT_EQ(cfg.getInt("alpha"), 10);
    EXPECT_EQ(cfg.getString("beta"), "text value");
    std::remove(path.c_str());
}

TEST(Config, KeysSorted)
{
    const Config cfg = Config::fromTokens({"z=1", "a=2", "m=3"});
    const auto keys = cfg.keys();
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], "a");
    EXPECT_EQ(keys[1], "m");
    EXPECT_EQ(keys[2], "z");
}

TEST(ConfigDeath, MissingRequiredKeyIsFatal)
{
    const Config cfg;
    EXPECT_EXIT(cfg.getString("nope"), ::testing::ExitedWithCode(1),
                "missing required config key");
}

TEST(ConfigDeath, MalformedIntIsFatal)
{
    const Config cfg = Config::fromTokens({"a=12x"});
    EXPECT_EXIT(cfg.getInt("a"), ::testing::ExitedWithCode(1),
                "non-integer");
}

TEST(ConfigDeath, FileParseErrorCarriesLineNumber)
{
    const std::string path = ::testing::TempDir() + "/molcache_cfg_bad.cfg";
    {
        std::ofstream out(path);
        out << "alpha = 1\n"
            << "\n"
            << "this line has no equals sign\n";
    }
    EXPECT_EXIT(Config::fromFile(path), ::testing::ExitedWithCode(1), ":3");
    std::remove(path.c_str());
}

TEST(Config, WarnUnknownKeysCountsAndHonoursPrefixes)
{
    const Config cfg = Config::fromTokens(
        {"model=molecular", "fault.seed=3", "fault.tile_outages=1",
         "goal.2=0.05", "tpyo=1"});
    EXPECT_EQ(cfg.warnUnknownKeys({"model", "goal.", "fault."}), 1u);
    EXPECT_EQ(cfg.warnUnknownKeys({"model", "goal.", "fault.", "tpyo"}), 0u);
    // Exact entries do not act as prefixes: fault.tile_outages and tpyo
    // stay unknown when only fault.seed is listed.
    EXPECT_EQ(cfg.warnUnknownKeys({"model", "goal.", "fault.seed"}), 2u);
}

} // namespace
} // namespace molcache
