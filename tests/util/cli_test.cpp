#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace molcache {
namespace {

CliParser
makeParser()
{
    CliParser cli("test", "test parser");
    cli.addOption("refs", "1000", "reference count");
    cli.addOption("name", "dflt", "a name");
    cli.addOption("rate", "0.5", "a rate");
    cli.addOption("size", "1M", "a size");
    cli.addFlag("verbose", "chatty output");
    return cli;
}

void
parse(CliParser &cli, std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    cli.parse(static_cast<int>(args.size()), args.data());
}

TEST(Cli, Defaults)
{
    CliParser cli = makeParser();
    parse(cli, {});
    EXPECT_EQ(cli.integer("refs"), 1000);
    EXPECT_EQ(cli.str("name"), "dflt");
    EXPECT_DOUBLE_EQ(cli.real("rate"), 0.5);
    EXPECT_EQ(cli.size("size"), 1u << 20);
    EXPECT_FALSE(cli.flag("verbose"));
}

TEST(Cli, SeparateValueForm)
{
    CliParser cli = makeParser();
    parse(cli, {"--refs", "42", "--name", "abc"});
    EXPECT_EQ(cli.integer("refs"), 42);
    EXPECT_EQ(cli.str("name"), "abc");
}

TEST(Cli, EqualsForm)
{
    CliParser cli = makeParser();
    parse(cli, {"--refs=7", "--rate=0.25", "--size=8K"});
    EXPECT_EQ(cli.integer("refs"), 7);
    EXPECT_DOUBLE_EQ(cli.real("rate"), 0.25);
    EXPECT_EQ(cli.size("size"), 8192u);
}

TEST(Cli, FlagForm)
{
    CliParser cli = makeParser();
    parse(cli, {"--verbose"});
    EXPECT_TRUE(cli.flag("verbose"));
}

TEST(Cli, Positional)
{
    CliParser cli = makeParser();
    parse(cli, {"gen", "--refs", "5", "file.trc"});
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "gen");
    EXPECT_EQ(cli.positional()[1], "file.trc");
    EXPECT_EQ(cli.integer("refs"), 5);
}

TEST(CliDeath, UnknownOption)
{
    CliParser cli = makeParser();
    std::vector<const char *> args = {"prog", "--bogus"};
    EXPECT_EXIT(cli.parse(2, args.data()), ::testing::ExitedWithCode(1),
                "unknown option");
}

TEST(CliDeath, MissingValue)
{
    CliParser cli = makeParser();
    std::vector<const char *> args = {"prog", "--refs"};
    EXPECT_EXIT(cli.parse(2, args.data()), ::testing::ExitedWithCode(1),
                "needs a value");
}

} // namespace
} // namespace molcache
