#include "util/units.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

TEST(Units, Literals)
{
    EXPECT_EQ(1_KiB, Bytes{1024});
    EXPECT_EQ(8_KiB, Bytes{8192});
    EXPECT_EQ(1_MiB, Bytes{1048576});
    EXPECT_EQ(1_GiB, Bytes{1073741824});
    EXPECT_EQ(6_MiB, Bytes{6u * 1048576u});
}

TEST(Units, FormatSize)
{
    EXPECT_EQ(formatSize(Bytes{512}), "512B");
    EXPECT_EQ(formatSize(8_KiB), "8KiB");
    EXPECT_EQ(formatSize(512_KiB), "512KiB");
    EXPECT_EQ(formatSize(6_MiB), "6MiB");
    EXPECT_EQ(formatSize(2_GiB), "2GiB");
    // Non-multiples fall back to the largest exact unit.
    EXPECT_EQ(formatSize(1_MiB + Bytes{1}),
              std::to_string((1_MiB).value() + 1) + "B");
    EXPECT_EQ(formatSize(Bytes{1536}), "1536B"); // 1.5KiB is not exact KiB
}

} // namespace
} // namespace molcache
