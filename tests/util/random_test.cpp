#include "util/random.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace molcache {
namespace {

TEST(Random, Pcg32Deterministic)
{
    Pcg32 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Random, Pcg32SeedsDiffer)
{
    Pcg32 a(1), b(2);
    bool differ = false;
    for (int i = 0; i < 16 && !differ; ++i)
        differ = a.next32() != b.next32();
    EXPECT_TRUE(differ);
}

TEST(Random, BelowRespectsBound)
{
    Pcg32 rng(7);
    for (u32 bound : {1u, 2u, 3u, 17u, 1000u}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Random, BelowOneIsZero)
{
    Pcg32 rng(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Random, BetweenInclusive)
{
    Pcg32 rng(9);
    std::set<u32> seen;
    for (int i = 0; i < 1000; ++i) {
        const u32 v = rng.between(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values occur
}

TEST(Random, UnitRealInHalfOpenInterval)
{
    Pcg32 rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.unitReal();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Random, ChanceExtremes)
{
    Pcg32 rng(13);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Random, Lfsr16Period)
{
    // Maximal-length 16-bit LFSR: state returns to seed after 65535 steps
    // and never hits zero.
    GaloisLfsr16 lfsr(0xACE1);
    std::set<u16> seen;
    u16 s = 0;
    for (u32 i = 0; i < 65535; ++i) {
        s = lfsr.step();
        EXPECT_NE(s, 0u);
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 65535u);
    EXPECT_EQ(s, 0xACE1); // back to the seed
}

TEST(Random, LfsrZeroSeedRecovers)
{
    GaloisLfsr16 lfsr(0);
    EXPECT_NE(lfsr.step(), 0u); // zero seed must not lock up
}

TEST(Random, FactoryAndParse)
{
    EXPECT_EQ(parseRngKind("pcg32"), RngKind::Pcg32);
    EXPECT_EQ(parseRngKind("xorshift"), RngKind::XorShift);
    EXPECT_EQ(parseRngKind("lfsr16"), RngKind::Lfsr16);
    EXPECT_EQ(makeRandomSource(RngKind::Pcg32, 1)->name(), "pcg32");
    EXPECT_EQ(makeRandomSource(RngKind::XorShift, 1)->name(),
              "xorshift64star");
    EXPECT_EQ(makeRandomSource(RngKind::Lfsr16, 1)->name(), "lfsr16");
}

/** Property: below(n) is roughly uniform for the quality generators. */
class UniformityProperty : public ::testing::TestWithParam<RngKind>
{
};

TEST_P(UniformityProperty, RoughlyUniform)
{
    auto rng = makeRandomSource(GetParam(), 123);
    constexpr u32 kBuckets = 8;
    constexpr u32 kDraws = 80000;
    std::map<u32, u32> counts;
    for (u32 i = 0; i < kDraws; ++i)
        ++counts[rng->below(kBuckets)];
    for (u32 b = 0; b < kBuckets; ++b) {
        // Expected 10000 per bucket; allow 15% slack (LFSR16 is known-weak
        // but still roughly balanced on 3-bit buckets).
        EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.15)
            << "bucket " << b << " for " << rng->name();
    }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, UniformityProperty,
                         ::testing::Values(RngKind::Pcg32, RngKind::XorShift,
                                           RngKind::Lfsr16));

} // namespace
} // namespace molcache
