#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/types.hpp"

namespace molcache {
namespace {

TEST(Sync, MutexLockProvidesMutualExclusion)
{
    mc::Mutex mutex;
    u64 counter = 0;
    constexpr u64 kIncrements = 20000;
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&] {
            for (u64 i = 0; i < kIncrements; ++i) {
                mc::MutexLock lock(mutex);
                ++counter;
            }
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(counter, 4 * kIncrements);
}

TEST(Sync, MutexLockReleasesOnScopeExit)
{
    mc::Mutex mutex;
    {
        mc::MutexLock lock(mutex);
    }
    // Released: try_lock must succeed from the same thread.
    EXPECT_TRUE(mutex.try_lock());
    mutex.unlock();
}

TEST(Sync, TryLockFailsWhileHeld)
{
    mc::Mutex mutex;
    mc::MutexLock lock(mutex);
    bool acquired = true;
    // try_lock on a std::mutex already held by this thread is UB, so
    // probe from another thread.
    std::thread prober([&] { acquired = mutex.try_lock(); });
    prober.join();
    EXPECT_FALSE(acquired);
}

TEST(Sync, CondVarWakesWaiter)
{
    mc::Mutex mutex;
    mc::CondVar cv;
    bool ready = false;
    bool observed = false;

    std::thread waiter([&] {
        mc::MutexLock lock(mutex);
        while (!ready)
            cv.wait(mutex);
        observed = true;
    });

    {
        mc::MutexLock lock(mutex);
        ready = true;
    }
    cv.notifyOne();
    waiter.join();
    EXPECT_TRUE(observed);
}

TEST(Sync, CondVarNotifyAllWakesEveryWaiter)
{
    mc::Mutex mutex;
    mc::CondVar cv;
    bool go = false;
    int woke = 0;

    std::vector<std::thread> waiters;
    waiters.reserve(3);
    for (int t = 0; t < 3; ++t)
        waiters.emplace_back([&] {
            mc::MutexLock lock(mutex);
            while (!go)
                cv.wait(mutex);
            ++woke;
        });

    {
        mc::MutexLock lock(mutex);
        go = true;
    }
    cv.notifyAll();
    for (std::thread &t : waiters)
        t.join();
    EXPECT_EQ(woke, 3);
}

TEST(Sync, CondVarWaitForWakesOnNotify)
{
    mc::Mutex mutex;
    mc::CondVar cv;
    bool go = false;
    bool woke = false;

    // A generous timeout: the test passes because notify wakes the
    // waiter, not because the clock ran out.
    std::thread waiter([&] {
        mc::MutexLock lock(mutex);
        while (!go)
            cv.waitFor(mutex, 60'000);
        woke = true;
    });
    {
        mc::MutexLock lock(mutex);
        go = true;
    }
    cv.notifyAll();
    waiter.join();
    EXPECT_TRUE(woke);
}

TEST(Sync, CondVarWaitForReturnsOnTimeout)
{
    mc::Mutex mutex;
    mc::CondVar cv;
    // Nobody ever notifies: waitFor must come back by itself (this is
    // the control thread's pacing primitive), with the mutex re-held.
    mc::MutexLock lock(mutex);
    cv.waitFor(mutex, 1);
}

} // namespace
} // namespace molcache
