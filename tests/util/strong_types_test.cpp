/**
 * @file
 * StrongId/StrongUnit semantics, including the compile-time rejection
 * probes: the whole point of the strong types is that transposed or
 * cross-domain arguments do not compile, so the tests assert exactly
 * that via type traits (a "non-compilation test" that itself compiles).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_set>

#include "core/molecule.hpp"
#include "core/region.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

/* Detection idiom: does `A op B` compile? */
template <typename A, typename B, typename = void>
struct CanAdd : std::false_type
{
};
template <typename A, typename B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type
{
};

template <typename A, typename B, typename = void>
struct CanEq : std::false_type
{
};
template <typename A, typename B>
struct CanEq<A, B,
             std::void_t<decltype(std::declval<A>() == std::declval<B>())>>
    : std::true_type
{
};

/* ---- StrongId: what must compile -------------------------------- */

static_assert(std::is_constructible_v<MoleculeId, u32>,
              "explicit construction from the raw rep");
static_assert(CanEq<MoleculeId, MoleculeId>::value);
static_assert(CanAdd<MoleculeId, u32>::value, "offset within an id space");

/* ---- StrongId: what must NOT compile ---------------------------- */

static_assert(!std::is_convertible_v<u32, MoleculeId>,
              "no implicit int -> id");
static_assert(!std::is_convertible_v<MoleculeId, u32>,
              "no implicit id -> int (use .value())");
static_assert(!std::is_constructible_v<MoleculeId, TileId>,
              "no cross-id construction");
static_assert(!std::is_assignable_v<MoleculeId &, TileId>,
              "no cross-id assignment");
static_assert(!CanEq<MoleculeId, TileId>::value,
              "no cross-id comparison");
static_assert(!CanAdd<MoleculeId, MoleculeId>::value,
              "two ids do not add (only id + offset)");
static_assert(!std::is_convertible_v<Addr, LineAddr>,
              "raw addresses are not line identities");

/* The headline probe: the transposed (TileId, MoleculeId) call the lint
 * fixture demonstrates must be rejected by the type system too. */
static_assert(std::is_constructible_v<Molecule, MoleculeId, TileId, u32,
                                      u32>);
static_assert(!std::is_constructible_v<Molecule, TileId, MoleculeId, u32,
                                       u32>,
              "transposed (TileId, MoleculeId) ctor args must not compile");

using AddMolecule =
    decltype(static_cast<void (Region::*)(MoleculeId, TileId, bool)>(
        &Region::addMolecule));
static_assert(std::is_invocable_v<AddMolecule, Region &, MoleculeId,
                                  TileId, bool>);
static_assert(!std::is_invocable_v<AddMolecule, Region &, TileId,
                                   MoleculeId, bool>,
              "transposed addMolecule(tile, molecule) must not compile");

/* ---- StrongUnit: what must / must not compile ------------------- */

static_assert(CanAdd<Bytes, Bytes>::value);
static_assert(!CanAdd<Bytes, Cycles>::value, "no cross-unit arithmetic");
static_assert(!CanAdd<Bytes, u64>::value,
              "no unit + scalar (scale with *, offset is meaningless)");
static_assert(!std::is_convertible_v<u64, Bytes>);
static_assert(!std::is_convertible_v<Bytes, u64>);

/* ---- runtime semantics ------------------------------------------ */

TEST(StrongId, ValueRoundTrip)
{
    const MoleculeId m{7};
    EXPECT_EQ(m.value(), 7u);
    EXPECT_EQ(MoleculeId{}.value(), 0u);
}

TEST(StrongId, ComparisonAndOrdering)
{
    EXPECT_EQ(TileId{3}, TileId{3});
    EXPECT_NE(TileId{3}, TileId{4});
    EXPECT_LT(TileId{3}, TileId{4});
    EXPECT_GE(TileId{4}, TileId{4});
}

TEST(StrongId, IterationAndOffsets)
{
    MoleculeId m{10};
    ++m;
    EXPECT_EQ(m, MoleculeId{11});
    --m;
    EXPECT_EQ(m, MoleculeId{10});
    EXPECT_EQ(m + 5, MoleculeId{15});
    EXPECT_EQ(MoleculeId{15} - MoleculeId{10}, 5u);

    u32 visited = 0;
    for (MoleculeId it{0}; it < MoleculeId{4}; ++it)
        ++visited;
    EXPECT_EQ(visited, 4u);
}

TEST(StrongId, HashesLikeItsValue)
{
    std::unordered_set<Asid> set;
    set.insert(Asid{1});
    set.insert(Asid{1});
    set.insert(Asid{2});
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.count(Asid{2}));
}

TEST(StrongId, StreamsAsRawValue)
{
    std::ostringstream os;
    os << ClusterId{9} << " " << Asid{3};
    EXPECT_EQ(os.str(), "9 3");
}

TEST(StrongId, Sentinels)
{
    EXPECT_NE(kInvalidMolecule, MoleculeId{0});
    EXPECT_NE(kInvalidAsid, Asid{0});
}

TEST(StrongId, LineAddrOfMasksOffset)
{
    EXPECT_EQ(lineAddrOf(0x1234, 64), LineAddr{0x1200});
    EXPECT_EQ(lineAddrOf(0x1200, 64), LineAddr{0x1200});
    EXPECT_EQ(lineAddrOf(0x123f, 64), lineAddrOf(0x1200, 64));
}

TEST(StrongUnit, LiteralsAndArithmetic)
{
    EXPECT_EQ((8_KiB).value(), 8192u);
    EXPECT_EQ(1_MiB, 1024_KiB);
    EXPECT_EQ(2_KiB + 2_KiB, 4_KiB);
    EXPECT_EQ(4_KiB - 1_KiB, 3_KiB);
    EXPECT_EQ(2_KiB * 3, 6_KiB);
    EXPECT_EQ(3 * 2_KiB, 6_KiB);
    EXPECT_EQ(6_KiB / 3, 2_KiB);
    EXPECT_EQ(1_MiB / 8_KiB, 128u); // ratio is dimensionless
    EXPECT_EQ(10_KiB % 4_KiB, 2_KiB);
}

TEST(StrongUnit, CompoundAssign)
{
    Bytes b{100};
    b += Bytes{28};
    EXPECT_EQ(b, Bytes{128});
    b -= Bytes{28};
    EXPECT_EQ(b, Bytes{100});

    Cycles c{3};
    c += Cycles{4};
    EXPECT_EQ(c, Cycles{7});
}

TEST(StrongUnit, FormatSize)
{
    EXPECT_EQ(formatSize(8_KiB), "8KiB");
    EXPECT_EQ(formatSize(6_MiB), "6MiB");
    EXPECT_EQ(formatSize(2_GiB), "2GiB");
    EXPECT_EQ(formatSize(Bytes{768}), "768B");
    EXPECT_EQ(formatSize(1_MiB + 512_KiB), "1536KiB");
    EXPECT_EQ(formatSize(Bytes{(1_KiB).value() + 1}), "1025B");
}

TEST(StrongTypes, ZeroCost)
{
    static_assert(sizeof(MoleculeId) == sizeof(u32));
    static_assert(sizeof(Asid) == sizeof(u16));
    static_assert(sizeof(Bytes) == sizeof(u64));
    static_assert(std::is_trivially_copyable_v<MoleculeId>);
    static_assert(std::is_trivially_copyable_v<Bytes>);
}

} // namespace
} // namespace molcache
