#include "util/bits.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

TEST(Bits, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
    EXPECT_FALSE(isPowerOfTwo((1ull << 63) + 1));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(~0ull), 63u);
}

TEST(Bits, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bits, AlignDown)
{
    EXPECT_EQ(alignDown(0, 64), 0u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignDown(64, 64), 64u);
    EXPECT_EQ(alignDown(130, 64), 128u);
}

TEST(Bits, AlignUp)
{
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(alignUp(65, 64), 128u);
}

TEST(Bits, BitsOf)
{
    EXPECT_EQ(bitsOf(0xABCD, 7, 0), 0xCDu);
    EXPECT_EQ(bitsOf(0xABCD, 15, 8), 0xABu);
    EXPECT_EQ(bitsOf(0xABCD, 3, 0), 0xDu);
    EXPECT_EQ(bitsOf(~0ull, 63, 0), ~0ull);
}

/** Property: floorLog2/ceilLog2 agree exactly on powers of two. */
class Log2Property : public ::testing::TestWithParam<u32>
{
};

TEST_P(Log2Property, FloorEqualsCeilOnPow2)
{
    const u64 v = 1ull << GetParam();
    EXPECT_EQ(floorLog2(v), GetParam());
    EXPECT_EQ(ceilLog2(v), GetParam());
    if (GetParam() > 1) {
        EXPECT_EQ(floorLog2(v - 1), GetParam() - 1);
        EXPECT_EQ(ceilLog2(v - 1), GetParam());
        EXPECT_EQ(ceilLog2(v + 1), GetParam() + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(AllShifts, Log2Property,
                         ::testing::Values(1u, 2u, 5u, 10u, 20u, 32u, 40u,
                                           62u));

} // namespace
} // namespace molcache
