#include "util/string_utils.hpp"

#include <gtest/gtest.h>

namespace molcache {
namespace {

TEST(StringUtils, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringUtils, Split)
{
    const auto parts = split("a, b ,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(StringUtils, SplitKeepsEmptyPieces)
{
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
}

TEST(StringUtils, SplitSingle)
{
    const auto parts = split("solo", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "solo");
}

TEST(StringUtils, ToLowerAndStartsWith)
{
    EXPECT_EQ(toLower("AbC123"), "abc123");
    EXPECT_TRUE(startsWith("--flag", "--"));
    EXPECT_FALSE(startsWith("-", "--"));
}

TEST(StringUtils, ParseSize)
{
    EXPECT_EQ(parseSize("0"), 0u);
    EXPECT_EQ(parseSize("123"), 123u);
    EXPECT_EQ(parseSize("8k"), 8192u);
    EXPECT_EQ(parseSize("8K"), 8192u);
    EXPECT_EQ(parseSize("8KB"), 8192u);
    EXPECT_EQ(parseSize("8KiB"), 8192u);
    EXPECT_EQ(parseSize(" 2M "), 2u << 20);
    EXPECT_EQ(parseSize("1G"), 1ull << 30);
    EXPECT_EQ(parseSize("512B"), 512u);
}

TEST(StringUtilsDeath, ParseSizeMalformed)
{
    EXPECT_EXIT(parseSize("abc"), ::testing::ExitedWithCode(1), "malformed");
    EXPECT_EXIT(parseSize("12Q"), ::testing::ExitedWithCode(1), "suffix");
    EXPECT_EXIT(parseSize(""), ::testing::ExitedWithCode(1), "empty");
}

TEST(StringUtils, FormatDouble)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDouble(1.0, 4), "1.0000");
}

} // namespace
} // namespace molcache
