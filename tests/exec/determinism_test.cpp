/**
 * @file
 * The sweep engine's headline guarantee: the deterministic JSON report
 * is byte-identical for any thread count.  The spec here deliberately
 * covers every placement policy, all three model kinds and a faulted
 * molecular configuration — the cases where hidden shared state (RNG
 * streams, fault schedules, contract counters) would first leak between
 * concurrently running jobs.  Run under ASan/UBSan via the asan preset
 * and under TSan via the tsan preset.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "cache/way_partitioned.hpp"
#include "exec/sweep.hpp"
#include "sim/experiment.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

namespace molcache {
namespace {

constexpr u64 kRefs = 30000;

/** All placement policies, every model kind, plus a faulted config. */
SweepSpec
coverageSpec()
{
    WayPartitionedParams wp;
    wp.sizeBytes = 512_KiB;
    wp.associativity = 8;

    FaultScheduleSpec faults;
    faults.hardFraction = 0.1;
    faults.transientFlips = 50;

    SweepSpec spec("determinism");
    spec.setAssoc("4way", traditionalParams(512_KiB, 4))
        .wayPartitioned("wp8", wp)
        .molecular("random",
                   fig5MolecularParams(1_MiB, PlacementPolicy::Random))
        .molecular("randy",
                   fig5MolecularParams(1_MiB, PlacementPolicy::Randy))
        .molecular("lru-direct",
                   fig5MolecularParams(1_MiB, PlacementPolicy::LruDirect))
        .molecular("randy-faulted",
                   fig5MolecularParams(1_MiB, PlacementPolicy::Randy),
                   faults)
        .workload("spec4", spec4Names())
        .workload("pair", {"ammp", "mcf"})
        .goals(GoalSet::uniform(0.1, 4))
        .registrationGoal(0.1)
        .seeds({1, 2})
        .references(kRefs)
        .inspect([](const SimJob &, CacheModel &model, MetricMap &extra) {
            if (auto *mol = dynamic_cast<MolecularCache *>(&model))
                extra["enabled"] = mol->averageEnabledMolecules();
        });
    return spec;
}

std::string
runToJson(u32 threads)
{
    SweepOptions options;
    options.threads = threads;
    const SweepReport report = SweepRunner(options).run(coverageSpec());
    std::ostringstream os;
    report.writeJson(os);
    return os.str();
}

TEST(SweepDeterminism, ParallelJsonIsByteIdenticalToSerial)
{
    const std::string serial = runToJson(1);
    EXPECT_FALSE(serial.empty());
    // 8 workers even on smaller machines: oversubscription shuffles the
    // schedule harder, which is exactly what the contract must survive.
    const std::string parallel = runToJson(8);
    EXPECT_EQ(serial, parallel)
        << "sweep JSON must not depend on thread count";
}

TEST(SweepDeterminism, RepeatedParallelRunsAgree)
{
    EXPECT_EQ(runToJson(4), runToJson(4));
}

} // namespace
} // namespace molcache
