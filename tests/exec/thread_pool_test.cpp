#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace molcache {
namespace {

/** Cheap mixing work the optimizer cannot fold away across iterations. */
u64
splitmixish(u64 x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    return x ^ (x >> 27);
}

TEST(WorkStealingPool, EveryIndexRunsExactlyOnce)
{
    constexpr u64 kJobs = 1000;
    WorkStealingPool pool(4);
    std::vector<std::atomic<u32>> hits(kJobs);
    pool.forEach(kJobs, [&](u64 i) { hits[i].fetch_add(1); });
    for (u64 i = 0; i < kJobs; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(WorkStealingPool, SingleThreadRunsInline)
{
    WorkStealingPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    const auto caller = std::this_thread::get_id();
    bool inline_run = false;
    pool.forEach(3, [&](u64) {
        inline_run = std::this_thread::get_id() == caller;
    });
    EXPECT_TRUE(inline_run);
}

TEST(WorkStealingPool, ZeroMeansHardwareConcurrency)
{
    WorkStealingPool pool(0);
    EXPECT_EQ(pool.threadCount(), WorkStealingPool::defaultThreadCount());
    EXPECT_GE(WorkStealingPool::defaultThreadCount(), 1u);
}

TEST(WorkStealingPool, EmptyBatchReturnsImmediately)
{
    WorkStealingPool pool(2);
    u64 calls = 0;
    pool.forEach(0, [&](u64) { ++calls; });
    EXPECT_EQ(calls, 0u);
}

TEST(WorkStealingPool, PoolIsReusableAcrossBatches)
{
    WorkStealingPool pool(3);
    std::atomic<u64> total{0};
    for (int batch = 0; batch < 5; ++batch)
        pool.forEach(100, [&](u64) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 500u);
}

TEST(WorkStealingPool, UnevenJobsAllComplete)
{
    // Wildly skewed job sizes exercise the steal path: worker 0's deque
    // holds the giant jobs and everyone else must come take them.
    WorkStealingPool pool(4);
    std::atomic<u64> sum{0};
    pool.forEach(64, [&](u64 i) {
        const u64 spin = (i % 8 == 0) ? 200000 : 10;
        u64 sink = 0;
        for (u64 k = 0; k < spin; ++k)
            sink += splitmixish(k);
        sum.fetch_add(i + (sink & 0)); // keep the loop observable
    });
    EXPECT_EQ(sum.load(), 64u * 63u / 2);
}

TEST(WorkStealingPool, FirstExceptionPropagates)
{
    WorkStealingPool pool(2);
    EXPECT_THROW(pool.forEach(10,
                              [](u64 i) {
                                  if (i == 5)
                                      throw std::runtime_error("job 5");
                              }),
                 std::runtime_error);
    // The pool must survive a throwing batch.
    std::atomic<u64> ok{0};
    pool.forEach(4, [&](u64) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 4u);
}

} // namespace
} // namespace molcache
