#include "exec/seed_stream.hpp"

#include <gtest/gtest.h>

#include <set>

namespace molcache {
namespace {

TEST(SeedStream, SplitMix64ReferenceVector)
{
    // First two outputs of the reference SplitMix64 generator seeded
    // with 0 (Steele, Lea & Flood 2014; also java.util.SplittableRandom):
    // the generator finalizes successive multiples of the golden gamma.
    EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafull);
    EXPECT_EQ(splitmix64(0x9e3779b97f4a7c15ull), 0x6e789e6aa1b965f4ull);
}

TEST(SeedStream, DerivationIsPure)
{
    EXPECT_EQ(deriveJobSeed(1, 0), deriveJobSeed(1, 0));
    EXPECT_EQ(deriveJobSeed(42, 7), deriveJobSeed(42, 7));
}

TEST(SeedStream, ConstexprUsable)
{
    static_assert(deriveJobSeed(1, 0) != deriveJobSeed(1, 1),
                  "adjacent replicate indices must diverge");
    static_assert(deriveJobSeed(1, 0) != deriveJobSeed(2, 0),
                  "adjacent base seeds must diverge");
}

TEST(SeedStream, NoCollisionsAcrossSmallGrid)
{
    // Structural collisions (base+1, index-1 aliasing and friends) would
    // show up immediately in a dense grid; 64-bit accidents won't.
    std::set<u64> seen;
    for (u64 base = 0; base < 64; ++base)
        for (u64 index = 0; index < 64; ++index)
            seen.insert(deriveJobSeed(base, index));
    EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(SeedStream, ZeroBaseAndIndexAreValid)
{
    EXPECT_NE(deriveJobSeed(0, 0), 0u);
    EXPECT_NE(deriveJobSeed(0, 0), deriveJobSeed(0, 1));
}

} // namespace
} // namespace molcache
