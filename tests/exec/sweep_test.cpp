#include "exec/sweep.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "exec/seed_stream.hpp"
#include "sim/experiment.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

namespace molcache {
namespace {

SweepSpec
tinySpec()
{
    SweepSpec spec("tiny");
    spec.setAssoc("dm", traditionalParams(64_KiB, 1))
        .setAssoc("4way", traditionalParams(64_KiB, 4))
        .workload("solo", {"ammp"})
        .workload("pair", {"ammp", "mcf"})
        .goals(GoalSet::uniform(0.1, 2))
        .references(2000);
    return spec;
}

TEST(SweepSpec, ExpandIsTheOrderedCartesianProduct)
{
    SweepSpec spec = tinySpec();
    spec.seeds({1, 2, 3});
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 2u * 2u * 3u);
    // Nesting order: models -> workloads -> seeds, indices 0..n-1.
    for (u64 i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[0].modelLabel, "dm");
    EXPECT_EQ(jobs[0].workloadLabel, "solo");
    EXPECT_EQ(jobs[0].options.seed, 1u);
    EXPECT_EQ(jobs[2].options.seed, 3u);
    EXPECT_EQ(jobs[3].workloadLabel, "pair");
    EXPECT_EQ(jobs[6].modelLabel, "4way");
    // Shared RunOptions fields fan out to every job.
    EXPECT_EQ(jobs[5].options.totalReferences, 2000u);
    EXPECT_TRUE(jobs[5].options.goals.hasGoal(Asid{0}));
}

TEST(SweepSpec, DefaultSeedAxisIsOne)
{
    const auto jobs = tinySpec().expand();
    ASSERT_EQ(jobs.size(), 4u);
    for (const SimJob &job : jobs)
        EXPECT_EQ(job.options.seed, 1u);
}

TEST(SweepSpec, PerWorkloadGoalsOverrideSpecGoals)
{
    GoalSet own;
    own.set(Asid{0}, 0.33);
    SweepSpec spec("goals");
    spec.setAssoc("dm", traditionalParams(64_KiB, 1))
        .workload("default-goals", {"ammp"})
        .workload("own-goals", {"ammp"}, own)
        .goals(GoalSet::uniform(0.1, 1));
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_DOUBLE_EQ(*jobs[0].options.goals.goal(Asid{0}), 0.1);
    EXPECT_DOUBLE_EQ(*jobs[1].options.goals.goal(Asid{0}), 0.33);
}

TEST(SweepSpec, ReplicatesDeriveSeedsFromBase)
{
    SweepSpec spec = tinySpec();
    spec.replicates(3, /*baseSeed=*/9);
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 12u);
    EXPECT_EQ(jobs[0].options.seed, deriveJobSeed(9, 0));
    EXPECT_EQ(jobs[1].options.seed, deriveJobSeed(9, 1));
    EXPECT_EQ(jobs[2].options.seed, deriveJobSeed(9, 2));
}

TEST(SweepSpecDeathTest, EmptyAxisIsFatal)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    SweepSpec no_models("no_models");
    no_models.workload("solo", {"ammp"});
    EXPECT_DEATH(no_models.expand(), "no model axis");

    SweepSpec no_workloads("no_workloads");
    no_workloads.setAssoc("dm", traditionalParams(64_KiB, 1));
    EXPECT_DEATH(no_workloads.expand(), "no workload axis");
}

TEST(SweepJob, BuildJobModelRegistersApplications)
{
    SweepSpec spec("build");
    spec.molecular("mol", fig5MolecularParams(1_MiB, PlacementPolicy::Randy))
        .workload("pair", {"ammp", "mcf"})
        .registrationGoal(0.2)
        .references(1000);
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 1u);
    auto model = buildJobModel(jobs[0]);
    auto &cache = dynamic_cast<MolecularCache &>(*model);
    EXPECT_GT(cache.region(Asid{0}).size(), 0u);
    EXPECT_GT(cache.region(Asid{1}).size(), 0u);
}

TEST(SweepJob, RunSimJobHonoursReferencesAndSeed)
{
    SweepSpec spec("run");
    spec.setAssoc("dm", traditionalParams(64_KiB, 1))
        .workload("solo", {"ammp"})
        .seeds({7})
        .references(5000);
    const auto jobs = spec.expand();
    const SweepPointResult point = runSimJob(jobs[0]);
    EXPECT_EQ(point.result.accesses, 5000u);
    EXPECT_EQ(point.seed, 7u);
    EXPECT_EQ(point.modelLabel, "dm");
    EXPECT_EQ(point.workloadLabel, "solo");
}

TEST(SweepReport, PointLookupAndTotals)
{
    SweepOptions serial;
    serial.threads = 1;
    SweepRunner runner(serial);
    const SweepReport report = runner.run(tinySpec());
    ASSERT_EQ(report.points.size(), 4u);
    EXPECT_EQ(report.totalAccesses(), 4u * 2000u);
    EXPECT_EQ(report.totalContractViolations(), 0u);
    const SweepPointResult &p = report.point("4way", "pair");
    EXPECT_EQ(p.result.accesses, 2000u);
    EXPECT_EQ(p.index, 3u); // 4way is model 1, pair is workload 1
}

TEST(SweepReport, InspectHookFillsExtraMetrics)
{
    SweepSpec spec = tinySpec();
    spec.inspect([](const SimJob &job, CacheModel &, MetricMap &extra) {
        extra["job_index"] = static_cast<double>(job.index);
    });
    SweepOptions serial;
    serial.threads = 1;
    const SweepReport report = SweepRunner(serial).run(spec);
    for (const SweepPointResult &p : report.points)
        EXPECT_DOUBLE_EQ(p.extra.at("job_index"),
                         static_cast<double>(p.index));
}

TEST(SweepReport, JsonIsSchemaVersionedAndTimingIsOptIn)
{
    SweepOptions serial;
    serial.threads = 1;
    const SweepReport report = SweepRunner(serial).run(tinySpec());
    std::ostringstream deterministic;
    report.writeJson(deterministic);
    const std::string text = deterministic.str();
    EXPECT_NE(text.find("\"schemaVersion\""), std::string::npos);
    EXPECT_NE(text.find("\"kind\": \"sweep\""), std::string::npos);
    EXPECT_NE(text.find("\"sweep\": \"tiny\""), std::string::npos);
    EXPECT_EQ(text.find("\"timing\""), std::string::npos)
        << "timing must stay out of the deterministic document";

    std::ostringstream again;
    report.writeJson(again);
    EXPECT_EQ(text, again.str()) << "repeated serialization must not drift";

    std::ostringstream timed;
    report.writeJson(timed, /*includeTiming=*/true);
    EXPECT_NE(timed.str().find("\"timing\""), std::string::npos);
}

} // namespace
} // namespace molcache
