/**
 * @file
 * Compile-time probe for the Clang Thread Safety Analysis adoption.
 *
 * This TU compiles as part of exec_test on every compiler, proving the
 * annotation macros stay portable.  Under Clang, the ctest
 * `tsa_compile_probe` (cmake/tsa_probe_test.cmake) additionally
 * recompiles it with -DMOLCACHE_TSA_PROBE_UNGUARDED and asserts that
 * the deliberately unguarded access below is REJECTED by
 * -Werror=thread-safety — pinning that the analysis is actually
 * enforcing, not silently disabled.
 */

#include "util/sync.hpp"
#include "util/types.hpp"

namespace molcache {

class TsaProbe
{
  public:
    /** Guarded access through the scoped lock: always compiles. */
    u64
    bumpGuarded()
    {
        mc::MutexLock lock(mutex_);
        return ++counter_;
    }

    /** Guarded access via a REQUIRES helper: always compiles. */
    u64
    bumpLocked()
    {
        mc::MutexLock lock(mutex_);
        return bumpImpl();
    }

#ifdef MOLCACHE_TSA_PROBE_UNGUARDED
    /**
     * Deliberately unguarded: reading counter_ without mutex_ held.
     * Under -Werror=thread-safety this function MUST fail to compile;
     * the tsa_compile_probe ctest fails if it does not.
     */
    u64
    bumpUnguarded()
    {
        return ++counter_;
    }
#endif

  private:
    u64 bumpImpl() MOLCACHE_REQUIRES(mutex_) { return ++counter_; }

    mc::Mutex mutex_;
    u64 counter_ MOLCACHE_GUARDED_BY(mutex_) = 0;
};

/** Referenced so the class is instantiated even under -fsyntax-only. */
u64
tsaProbeTouch()
{
    TsaProbe probe;
    probe.bumpGuarded();
    return probe.bumpLocked();
}

} // namespace molcache
