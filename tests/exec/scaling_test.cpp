/**
 * @file
 * The acceptance bar for the parallel sweep engine: a fig5-sized sweep
 * (24 models x 2 workloads) on 8 threads must finish at least 4x faster
 * than on 1 thread while producing a byte-identical report.  The wall
 * clock only means something with real cores underneath, so the speedup
 * assertion skips (and the byte-identity half still runs) when the host
 * has fewer than 8 hardware threads.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "exec/sweep.hpp"
#include "sim/experiment.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

namespace molcache {
namespace {

/** The fig5 grid (6 kinds x 4 sizes x 2 goal graphs) at short length. */
SweepSpec
fig5SizedSpec(u64 refs)
{
    GoalSet graph_a = GoalSet::uniform(0.1, 4);
    GoalSet graph_b;
    graph_b.set(Asid{0}, 0.1);
    graph_b.set(Asid{1}, 0.1);
    graph_b.set(Asid{2}, 0.1);

    SweepSpec spec("fig5_scaling");
    for (const Bytes size : {1_MiB, 2_MiB, 4_MiB, 8_MiB}) {
        std::string tag = "@";
        tag += formatSize(size); // avoids gcc-12's operator+ restrict FP
        spec.setAssoc("DM" + tag, traditionalParams(size, 1));
        spec.setAssoc("2-way" + tag, traditionalParams(size, 2));
        spec.setAssoc("4-way" + tag, traditionalParams(size, 4));
        spec.setAssoc("8-way" + tag, traditionalParams(size, 8));
        spec.molecular("Mol(Random)" + tag,
                       fig5MolecularParams(size, PlacementPolicy::Random));
        spec.molecular("Mol(Randy)" + tag,
                       fig5MolecularParams(size, PlacementPolicy::Randy));
    }
    spec.workload("graphA", spec4Names(), graph_a)
        .workload("graphB", spec4Names(), graph_b)
        .goals(graph_a)
        .registrationGoal(0.1)
        .references(refs);
    return spec;
}

TEST(SweepScaling, EightThreadsBeatSerialByFourX)
{
    // Byte-identity across thread counts holds on any host; keep the
    // trace short enough that the serial leg stays test-suite friendly.
    const u64 refs = 20000;
    SweepOptions serial_options;
    serial_options.threads = 1;
    const SweepReport serial =
        SweepRunner(serial_options).run(fig5SizedSpec(refs));

    SweepOptions parallel_options;
    parallel_options.threads = 8;
    const SweepReport parallel =
        SweepRunner(parallel_options).run(fig5SizedSpec(refs));

    ASSERT_EQ(serial.points.size(), 48u);
    std::ostringstream serial_json, parallel_json;
    serial.writeJson(serial_json);
    parallel.writeJson(parallel_json);
    EXPECT_EQ(serial_json.str(), parallel_json.str());

    if (std::thread::hardware_concurrency() < 8)
        GTEST_SKIP() << "speedup needs >= 8 hardware threads, have "
                     << std::thread::hardware_concurrency();

    // Re-time with a workload long enough for per-point setup to vanish
    // into the noise (the short legs above were correctness-only).
    const u64 timed_refs = 150000;
    const SweepReport timed_serial =
        SweepRunner(serial_options).run(fig5SizedSpec(timed_refs));
    const SweepReport timed_parallel =
        SweepRunner(parallel_options).run(fig5SizedSpec(timed_refs));
    EXPECT_GE(timed_serial.wallSeconds / timed_parallel.wallSeconds, 4.0)
        << "serial " << timed_serial.wallSeconds << "s vs parallel "
        << timed_parallel.wallSeconds << "s";
}

} // namespace
} // namespace molcache
