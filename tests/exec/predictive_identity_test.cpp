/**
 * @file
 * Paper-sweep byte-identity under dormant predictive knobs: every
 * `guardian.predictive.*` setting other than `enabled` may change
 * freely without perturbing a single byte of the fig5 / fig6 / table1 /
 * table2 sweep JSON.  The predictive control plane must be provably
 * inert while disabled — the paper reproductions stay byte-identical
 * whether the knobs are absent (default-constructed params) or present
 * but off.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "exec/sweep.hpp"
#include "sim/experiment.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

namespace molcache {
namespace {

constexpr u64 kRefs = 30'000;

/** Every predictive knob moved off its default — except `enabled`,
 * which stays false.  Applied to a sweep's molecular configs, none of
 * this may reach the report. */
MolecularCacheParams
withDormantPredictiveKnobs(MolecularCacheParams p)
{
    PredictiveGuardianParams &pred = p.guardian.predictive;
    pred.enabled = false;
    pred.minConfidence = 0.75;
    pred.maxActionMolecules = 7;
    pred.initialTrust = 0.9;
    pred.actAbove = 0.05;
    pred.trustWeight = 0.95;
    pred.quarantineBelow = 0.55;
    pred.restoreAbove = 0.85;
    pred.probationEpochs = 1;
    return p;
}

std::string
runToJson(const SweepSpec &spec)
{
    SweepOptions options;
    options.threads = 1;
    const SweepReport report = SweepRunner(options).run(spec);
    std::ostringstream os;
    report.writeJson(os);
    return os.str();
}

/** Figure 5 shape: traditional baselines plus both molecular
 * placements, graph A (all goaled) and graph B (mcf goal-less). */
SweepSpec
fig5Spec(bool dormantKnobs)
{
    GoalSet goals_a;
    for (u16 i = 0; i < 4; ++i)
        goals_a.set(Asid{i}, 0.1);
    GoalSet goals_b;
    for (u16 i = 0; i < 3; ++i)
        goals_b.set(Asid{i}, 0.1);

    auto mol = [&](PlacementPolicy placement) {
        MolecularCacheParams p = fig5MolecularParams(1_MiB, placement);
        return dormantKnobs ? withDormantPredictiveKnobs(p) : p;
    };
    SweepSpec spec("fig5_predictive_identity");
    spec.setAssoc("4-way", traditionalParams(1_MiB, 4))
        .molecular("Mol(Random)", mol(PlacementPolicy::Random))
        .molecular("Mol(Randy)", mol(PlacementPolicy::Randy))
        .workload("graphA", spec4Names(), goals_a)
        .workload("graphB", spec4Names(), goals_b)
        .seeds({1})
        .references(kRefs)
        .registrationGoal(0.1);
    return spec;
}

/** Table 2 / Figure 6 shape: the 6 MiB three-cluster geometry on the
 * 12-app mix, with the per-app molecule counts Figure 6's HPM metric
 * reads surfaced as extra metrics. */
SweepSpec
table2Spec(bool dormantKnobs)
{
    auto mol = [&](PlacementPolicy placement) {
        MolecularCacheParams p = table2MolecularParams(placement);
        return dormantKnobs ? withDormantPredictiveKnobs(p) : p;
    };
    SweepSpec spec("table2_predictive_identity");
    spec.setAssoc("4MB 4way", traditionalParams(4_MiB, 4))
        .molecular("6MB Molecular Randy", mol(PlacementPolicy::Randy))
        .molecular("6MB Molecular Random", mol(PlacementPolicy::Random))
        .workload("mixed12", mixed12Names())
        .goals(GoalSet::uniform(0.25, 12))
        .registrationGoal(0.25)
        .seeds({1})
        .references(kRefs)
        .inspect([](const SimJob &, CacheModel &model, MetricMap &extra) {
            if (auto *mol = dynamic_cast<MolecularCache *>(&model))
                for (u32 i = 0; i < 12; ++i)
                    extra["mols." + std::to_string(i)] =
                        mol->region(Asid{static_cast<u16>(i)}).size();
        });
    return spec;
}

/** Table 1 shape: goal-less interference combos on a shared set-assoc
 * L2 — no molecular model, so the identity is trivially structural, and
 * this pins it staying that way if a molecular baseline is ever added. */
SweepSpec
table1Spec(bool dormantKnobs)
{
    (void)dormantKnobs; // no molecular config to thread the knobs into
    SweepSpec spec("table1_predictive_identity");
    spec.setAssoc("1MB-4way", traditionalParams(1_MiB, 4));
    spec.workload("art+mcf", {"art", "mcf"})
        .workload("art+mcf+ammp+parser", {"art", "mcf", "ammp", "parser"})
        .seeds({1})
        .references(kRefs);
    return spec;
}

TEST(PredictiveIdentity, Fig5SweepUnchangedByDormantKnobs)
{
    const std::string bare = runToJson(fig5Spec(false));
    EXPECT_FALSE(bare.empty());
    EXPECT_EQ(bare, runToJson(fig5Spec(true)));
}

TEST(PredictiveIdentity, Table2AndFig6SweepUnchangedByDormantKnobs)
{
    const std::string bare = runToJson(table2Spec(false));
    EXPECT_FALSE(bare.empty());
    EXPECT_EQ(bare, runToJson(table2Spec(true)));
}

TEST(PredictiveIdentity, Table1SweepUnchangedByDormantKnobs)
{
    const std::string bare = runToJson(table1Spec(false));
    EXPECT_FALSE(bare.empty());
    EXPECT_EQ(bare, runToJson(table1Spec(true)));
}

} // namespace
} // namespace molcache
