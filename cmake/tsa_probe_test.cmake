# Negative-compilation probe for Clang Thread Safety Analysis
# (docs/static_analysis.md, "Concurrency discipline").
#
# Invoked as a ctest by tests/CMakeLists.txt (Clang only) with:
#   CXX  - the clang++ driver
#   SRC  - tests/exec/tsa_probe.cpp
#   INC  - the src/ include root
#
# Two compiles of the same TU:
#   1. without MOLCACHE_TSA_PROBE_UNGUARDED: the annotated, lock-held
#      accesses must compile cleanly under -Werror=thread-safety;
#   2. with it: the deliberately unguarded access must be REJECTED.
# Passing both proves the analysis is armed and the annotations are
# doing work — not that the macros merely expanded to nothing.

set(flags -std=c++20 -fsyntax-only -Wall -Wextra
    -Wthread-safety -Werror=thread-safety "-I${INC}")

execute_process(
    COMMAND ${CXX} ${flags} ${SRC}
    RESULT_VARIABLE guarded_result
    ERROR_VARIABLE guarded_err)
if(NOT guarded_result EQUAL 0)
    message(FATAL_ERROR
        "tsa probe: the guarded baseline failed to compile under "
        "-Werror=thread-safety:\n${guarded_err}")
endif()

execute_process(
    COMMAND ${CXX} ${flags} -DMOLCACHE_TSA_PROBE_UNGUARDED ${SRC}
    RESULT_VARIABLE unguarded_result
    ERROR_VARIABLE unguarded_err)
if(unguarded_result EQUAL 0)
    message(FATAL_ERROR
        "tsa probe: the deliberately unguarded access COMPILED; "
        "thread-safety analysis is not enforcing")
endif()

message(STATUS
    "tsa probe: guarded baseline compiles, unguarded access rejected")
