/**
 * @file
 * Config-driven experiment runner: describe a cache, a workload mix and
 * per-application goals in a key=value file (or as CLI key=value
 * overrides), run, and get a table plus optional JSON.
 *
 * Example configuration:
 *
 *     # experiment.cfg
 *     model          = molecular        # molecular | setassoc | waypart
 *     size           = 2M
 *     placement      = randy
 *     tiles          = 4
 *     clusters       = 1
 *     refs           = 2000000
 *     profiles       = ammp,parser,gcc,twolf
 *     goal           = 0.1
 *     goal.0         = 0.05             # per-ASID override
 *     seed           = 1
 *
 * Fault-injection drills (molecular model only; docs/fault_model.md):
 *
 *     fault.hard_fraction   = 0.1       # decommission 10% of molecules
 *     fault.transient_flips = 200       # seeded bit flips
 *     fault.seed            = 7
 *     hard_fault_threshold  = 1
 *     audit                 = 50000     # invariant audit every N accesses
 *
 * Run with:
 *
 *     experiment_runner experiment.cfg [extra=overrides ...] [--json out]
 *
 * Unknown keys are warn()ed so typos surface instead of silently
 * defaulting.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "cache/set_assoc.hpp"
#include "cache/way_partitioned.hpp"
#include "core/molecular_cache.hpp"
#include "core/sim_access.hpp"
#include "fault/fault_injector.hpp"
#include "fault/invariant_checker.hpp"
#include "sim/experiment.hpp"
#include "sim/result_json.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"
#include "util/config.hpp"
#include "util/config_keys.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/adversarial.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

GoalSet
goalsFrom(const Config &cfg, size_t apps)
{
    GoalSet goals;
    const double common = cfg.getDouble("goal", 0.1);
    for (size_t i = 0; i < apps; ++i) {
        goals.set(Asid{static_cast<u16>(i)},
                  cfg.getDouble("goal." + std::to_string(i), common));
    }
    return goals;
}

std::unique_ptr<CacheModel>
buildModel(const Config &cfg, const GoalSet &goals, size_t apps, u64 refs)
{
    const std::string model = cfg.getString("model", "molecular");
    const Bytes size = cfg.getSize("size", 2_MiB);
    const u64 seed = static_cast<u64>(cfg.getInt("seed", 1));

    if (model == "setassoc") {
        SetAssocParams p;
        p.sizeBytes = size;
        p.associativity = static_cast<u32>(cfg.getInt("assoc", 8));
        p.replacement =
            parseReplPolicy(cfg.getString("replacement", "lru"));
        p.seed = seed;
        return std::make_unique<SetAssocCache>(p);
    }
    if (model == "waypart") {
        WayPartitionedParams p;
        p.sizeBytes = size;
        p.associativity = static_cast<u32>(cfg.getInt("assoc", 8));
        auto cache = std::make_unique<WayPartitionedCache>(p);
        for (size_t i = 0; i < apps; ++i)
            cache->registerApplication(Asid{static_cast<u16>(i)},
                                       *goals.goal(Asid{static_cast<u16>(i)}));
        return cache;
    }
    if (model == "molecular") {
        MolecularCacheParams p;
        p.moleculeSize = cfg.getSize("molecule", 8_KiB);
        p.tilesPerCluster = static_cast<u32>(cfg.getInt("tiles", 4));
        p.clusters = static_cast<u32>(cfg.getInt("clusters", 1));
        const Bytes tile_bytes =
            size / (static_cast<u64>(p.tilesPerCluster) * p.clusters);
        if (tile_bytes == Bytes{0} || tile_bytes % p.moleculeSize != Bytes{0})
            fatal("size does not divide into tiles of whole molecules");
        p.moleculesPerTile =
            static_cast<u32>(tile_bytes / p.moleculeSize);
        p.placement =
            parsePlacementPolicy(cfg.getString("placement", "randy"));
        p.resizeScheme =
            parseResizeScheme(cfg.getString("resize", "global"));
        p.seed = seed;
        p.hardFaultThreshold =
            static_cast<u32>(cfg.getInt("hard_fault_threshold", 1));
        p.guardian.enabled = cfg.getBool("guardian.enabled", false);
        p.guardian.hysteresis =
            cfg.getDouble("guardian.hysteresis", p.guardian.hysteresis);
        p.guardian.cooldownEpochs = static_cast<u32>(cfg.getInt(
            "guardian.cooldown", p.guardian.cooldownEpochs));
        p.guardian.oscillationWindow = static_cast<u32>(cfg.getInt(
            "guardian.window", p.guardian.oscillationWindow));
        p.guardian.maxSignFlips = static_cast<u32>(cfg.getInt(
            "guardian.max_flips", p.guardian.maxSignFlips));
        p.guardian.floorMolecules = static_cast<u32>(cfg.getInt(
            "guardian.floor", p.guardian.floorMolecules));
        p.guardian.watchdogEpochs = static_cast<u32>(cfg.getInt(
            "guardian.watchdog", p.guardian.watchdogEpochs));
        p.guardian.feasibilityEpochs = static_cast<u32>(cfg.getInt(
            "guardian.feasibility_epochs", p.guardian.feasibilityEpochs));
        p.guardian.pressureThreshold = cfg.getDouble(
            "guardian.pressure", p.guardian.pressureThreshold);
        PredictiveGuardianParams &pred = p.guardian.predictive;
        pred.enabled =
            cfg.getBool("guardian.predictive.enabled", pred.enabled);
        pred.minConfidence = cfg.getDouble(
            "guardian.predictive.min_confidence", pred.minConfidence);
        pred.maxActionMolecules = static_cast<u32>(cfg.getInt(
            "guardian.predictive.max_action", pred.maxActionMolecules));
        pred.initialTrust = cfg.getDouble(
            "guardian.predictive.initial_trust", pred.initialTrust);
        pred.actAbove =
            cfg.getDouble("guardian.predictive.act_above", pred.actAbove);
        pred.trustWeight = cfg.getDouble(
            "guardian.predictive.trust_weight", pred.trustWeight);
        pred.quarantineBelow = cfg.getDouble(
            "guardian.predictive.quarantine_below", pred.quarantineBelow);
        pred.restoreAbove = cfg.getDouble(
            "guardian.predictive.restore_above", pred.restoreAbove);
        pred.probationEpochs = static_cast<u32>(cfg.getInt(
            "guardian.predictive.probation", pred.probationEpochs));
        auto cache = std::make_unique<MolecularCache>(p);
        for (size_t i = 0; i < apps; ++i)
            cache->registerApplication(Asid{static_cast<u16>(i)},
                                       *goals.goal(Asid{static_cast<u16>(i)}));
        if (p.guardian.enabled) {
            for (size_t i = 0; i < apps; ++i) {
                const std::string key =
                    "guardian.floor." + std::to_string(i);
                const i64 floor =
                    cfg.getInt(key, p.guardian.floorMolecules);
                cache->setRegionFloor(
                    Asid{static_cast<u16>(i)}, static_cast<u32>(floor));
            }
        }
        if (hasFaultKeys(cfg)) {
            // Default fault window: the middle half of the run, so the
            // cache warms before faults land and has time to recover.
            const FaultScheduleSpec spec =
                faultSpecFromConfig(cfg, refs / 4, refs / 4 * 3 + 1);
            SimAccess{*cache}.setFaultInjector(FaultInjector::fromSpec(
                spec, p.totalMolecules(), p.moleculesPerTile,
                p.linesPerMolecule()));
        }
        if (const u64 audit = static_cast<u64>(cfg.getInt("audit", 0)))
            InvariantChecker::attach(*cache, audit);
        return cache;
    }
    fatal("unknown model '", model,
          "' (expected molecular|setassoc|waypart)");
}

void
writeJson(const std::string &path, const SimResult &result)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    // The canonical schema-versioned document (sim/result_json.hpp), so
    // this tool emits byte-identical results to the sweep engine.
    JsonWriter json(out);
    writeSimResultDocument(json, result);
    out << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // Hand-rolled argument handling: positional config file, key=value
    // overrides, optional --json FILE.
    Config cfg;
    std::string json_out;
    std::vector<std::string> overrides;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            if (i + 1 >= argc)
                fatal("--json needs a file");
            json_out = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: experiment_runner [config.cfg] "
                        "[key=value ...] [--json out.json]\n");
            return 0;
        } else if (arg.find('=') != std::string::npos) {
            overrides.push_back(arg);
        } else {
            cfg.merge(Config::fromFile(arg));
        }
    }
    cfg.merge(Config::fromTokens(overrides));

    const auto profiles = split(
        cfg.getString("profiles", "ammp,parser,gcc,twolf"), ',');
    // A profile list naming only adversary kinds switches the runner to
    // the adversarial generators (src/workload/adversarial.hpp), which
    // unlocks the `workload.hint.*` phase-hint knobs; mixing the two
    // families in one list is rejected below via hasProfile.
    const bool adversarial =
        !profiles.empty() &&
        std::all_of(profiles.begin(), profiles.end(), isAdversaryKind);
    if (!adversarial)
        for (const auto &name : profiles)
            if (!hasProfile(name))
                fatal("unknown profile '", name, "'");

    cfg.warnUnknownKeys(knownConfigKeyNames());

    const GoalSet goals = goalsFrom(cfg, profiles.size());
    const u64 refs =
        static_cast<u64>(cfg.getInt("refs", 2'000'000));
    auto model = buildModel(cfg, goals, profiles.size(), refs);
    const u64 seed = static_cast<u64>(cfg.getInt("seed", 1));

    SimResult result;
    if (adversarial) {
        std::vector<AdversaryKind> kinds;
        for (const auto &name : profiles)
            kinds.push_back(parseAdversaryKind(name));
        const std::vector<HintPolicy> hints(kinds.size(),
                                            hintPolicyFromConfig(cfg));
        auto source = makeAdversarialSource(kinds, hints, refs, seed);
        result = Simulator::run(*source, *model,
                                RunOptions{}
                                    .withGoals(goals)
                                    .withLabels(labelMap(profiles)));
    } else {
        result = runWorkload(profiles, *model,
                             RunOptions{}
                                 .withGoals(goals)
                                 .withReferences(refs)
                                 .withSeed(seed));
    }

    std::printf("%s | %llu refs\n", result.cacheName.c_str(),
                static_cast<unsigned long long>(result.accesses));
    TablePrinter table(
        {"app", "miss rate", "goal", "deviation", "AMAT (cyc)"});
    for (const AppSummary &app : result.qos.apps) {
        table.row({app.label, formatDouble(app.missRate, 4),
                   app.goal ? formatDouble(*app.goal, 2) : "-",
                   app.deviation ? formatDouble(*app.deviation, 4) : "-",
                   formatDouble(app.amat, 1)});
    }
    table.print(std::cout);
    std::printf("average deviation %.4f | global miss rate %.4f | "
                "energy %.3f mJ\n",
                result.qos.averageDeviation, result.qos.globalMissRate,
                result.totalEnergyNj * 1e-6);
    if (result.faultEventsApplied > 0) {
        std::printf("faults: %llu events | %llu molecules decommissioned | "
                    "%llu flips detected | %llu dirty lines lost | "
                    "%llu recovery grants | reconvergence <= %u epochs%s\n",
                    static_cast<unsigned long long>(result.faultEventsApplied),
                    static_cast<unsigned long long>(
                        result.moleculesDecommissioned),
                    static_cast<unsigned long long>(
                        result.transientFlipsDetected),
                    static_cast<unsigned long long>(result.dirtyLinesLost),
                    static_cast<unsigned long long>(result.recoveryGrants),
                    result.maxReconvergenceEpochs,
                    result.regionsStillRecovering
                        ? " (some regions still recovering)"
                        : "");
    }
    if (result.guardian.enabled) {
        std::printf("guardian: %llu holds | %llu oscillation events | "
                    "%llu floor hits | %llu floor restores | "
                    "%u infeasible | %u stuck | pressure %.2f\n",
                    static_cast<unsigned long long>(
                        result.guardian.holdEpochs),
                    static_cast<unsigned long long>(
                        result.guardian.oscillationEvents),
                    static_cast<unsigned long long>(
                        result.guardian.floorHits),
                    static_cast<unsigned long long>(
                        result.guardian.floorRestoreGrants),
                    result.guardian.infeasibleRegions,
                    result.guardian.stuckRegions,
                    result.guardian.poolPressure);
        for (const AppSummary &app : result.qos.apps) {
            if (!app.guardian)
                continue;
            const GuardianAppTelemetry &g = *app.guardian;
            if (g.verdict == FeasibilityVerdict::Infeasible)
                std::printf("  %s: goal infeasible, degraded by %.4f\n",
                            app.label.c_str(), g.shortfall);
            if (g.stuck)
                std::printf("  %s: stuck above goal past the watchdog "
                            "budget\n",
                            app.label.c_str());
        }
    }

    if (!json_out.empty()) {
        writeJson(json_out, result);
        std::printf("wrote %s\n", json_out.c_str());
    }
    return 0;
}
