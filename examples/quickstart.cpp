/**
 * @file
 * Quickstart: build a molecular cache, register two applications with
 * different miss-rate goals, drive a synthetic workload through it, and
 * read the results.  This is the 60-second tour of the public API.
 */

#include <cstdio>

#include "core/molecular_cache.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

int
main()
{
    // 1. Describe the cache: 1 cluster of 4 tiles, 64 x 8KiB molecules
    //    per tile => 2 MiB total, Randy placement, adaptive resizing.
    MolecularCacheParams params;
    params.moleculeSize = 8_KiB;
    params.moleculesPerTile = 64;
    params.tilesPerCluster = 4;
    params.clusters = 1;
    params.placement = PlacementPolicy::Randy;

    MolecularCache cache(params);

    // 2. Register applications.  Each gets an exclusive cache region that
    //    the resize daemon steers toward its miss-rate goal.
    cache.registerApplication(Asid{0}, /*resizeGoal=*/0.05);
    cache.registerApplication(Asid{1}, /*resizeGoal=*/0.20);

    // 3. Build a two-application workload from the calibrated profiles
    //    (ammp: small hot working set; parser: large working set).
    auto source = makeMultiProgramSource({"ammp", "parser"},
                                         /*totalReferences=*/1'000'000);

    // 4. Run.  RunOptions collects everything the simulation needs;
    //    the GoalSet drives the QoS summary (deviation from goal).
    GoalSet goals;
    goals.set(Asid{0}, 0.05);
    goals.set(Asid{1}, 0.20);
    const SimResult result = Simulator::run(
        *source, cache,
        RunOptions{}
            .withGoals(goals)
            .withLabels(labelMap({"ammp", "parser"})));

    // 5. Inspect the outcome.
    std::printf("%s\n", result.cacheName.c_str());
    std::printf("%-8s %10s %8s %8s %10s\n", "app", "accesses", "miss",
                "goal", "molecules");
    for (const AppSummary &app : result.qos.apps) {
        std::printf("%-8s %10llu %8.4f %8.2f %10u\n", app.label.c_str(),
                    static_cast<unsigned long long>(app.accesses),
                    app.missRate, app.goal.value_or(0.0),
                    cache.region(app.asid).size());
    }
    std::printf("average deviation from goals: %.4f\n",
                result.qos.averageDeviation);
    std::printf("avg energy/access: %.3f nJ (worst case %.3f nJ)\n",
                cache.averageAccessEnergyNj(),
                cache.worstCaseAccessEnergyNj());
    std::printf("resize cycles run: %llu\n",
                static_cast<unsigned long long>(cache.resizeCycles()));
    return 0;
}
