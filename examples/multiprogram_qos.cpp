/**
 * @file
 * Multiprogram QoS scenario: a CMP consolidation story.
 *
 * A latency-critical service (modelled by twolf's compact working set)
 * shares the last-level cache with a batch compressor (gzip), a network
 * function (NAT) and a media decoder (decode).  The operator gives the
 * service a tight 8% miss-rate goal and the batch jobs loose 30% goals.
 *
 * The example runs the same mix on (a) a traditional shared 2MB 8-way
 * cache and (b) a 2MB molecular cache with per-application regions, and
 * prints the per-application outcome side by side — the molecular cache
 * isolates the service from its noisy neighbours.
 *
 * Usage: multiprogram_qos [--refs N] [--service-goal G] [--batch-goal G]
 */

#include <cstdio>
#include <vector>

#include "cache/set_assoc.hpp"
#include "core/molecular_cache.hpp"
#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

const std::vector<std::string> kApps = {"twolf", "gzip", "NAT", "decode"};

GoalSet
makeGoals(double serviceGoal, double batchGoal)
{
    GoalSet goals;
    goals.set(Asid{0}, serviceGoal); // twolf: the latency-critical service
    goals.set(Asid{1}, batchGoal);
    goals.set(Asid{2}, batchGoal);
    goals.set(Asid{3}, batchGoal);
    return goals;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("multiprogram_qos",
                  "consolidation scenario: one latency-critical service "
                  "vs three batch jobs");
    cli.addOption("refs", "3000000", "merged references");
    cli.addOption("service-goal", "0.08",
                  "miss-rate goal of the critical service");
    cli.addOption("batch-goal", "0.30", "miss-rate goal of the batch jobs");
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const double service_goal = cli.real("service-goal");
    const double batch_goal = cli.real("batch-goal");
    const GoalSet goals = makeGoals(service_goal, batch_goal);

    // (a) Traditional shared cache: no isolation.
    SetAssocCache shared(traditionalParams(2_MiB, 8));
    const RunOptions options =
        RunOptions{}.withGoals(goals).withReferences(refs);
    const SimResult trad = runWorkload(kApps, shared, options);

    // (b) Molecular cache: one region per application, one app per tile.
    MolecularCacheParams mp;
    mp.moleculeSize = 8_KiB;
    mp.moleculesPerTile = 64; // 512 KiB tiles, 2 MiB total
    mp.tilesPerCluster = 4;
    mp.clusters = 1;
    MolecularCache molecular(mp);
    molecular.registerApplication(Asid{0}, service_goal, ClusterId{0}, 0, 1);
    molecular.registerApplication(Asid{1}, batch_goal, ClusterId{0}, 1, 1);
    molecular.registerApplication(Asid{2}, batch_goal, ClusterId{0}, 2, 1);
    molecular.registerApplication(Asid{3}, batch_goal, ClusterId{0}, 3, 1);
    const SimResult mol = runWorkload(kApps, molecular, options);

    std::printf("consolidation scenario: %llu refs, service goal %.0f%%, "
                "batch goal %.0f%%\n\n",
                static_cast<unsigned long long>(refs), service_goal * 100,
                batch_goal * 100);
    std::printf("%-8s %8s | %-22s | %-28s\n", "", "", trad.cacheName.c_str(),
                mol.cacheName.c_str());
    std::printf("%-8s %8s | %10s %10s | %10s %10s %6s\n", "app", "goal",
                "miss", "dev", "miss", "dev", "mols");
    for (u32 i = 0; i < kApps.size(); ++i) {
        // find(): a zero-traffic app has no summary row; print zeros
        // instead of aborting the report.
        const AppSummary *t = trad.qos.find(static_cast<Asid>(i));
        const AppSummary *m = mol.qos.find(static_cast<Asid>(i));
        std::printf("%-8s %7.0f%% | %10.4f %10.4f | %10.4f %10.4f %6u\n",
                    kApps[i].c_str(),
                    (t != nullptr ? t->goal.value_or(0) : 0.0) * 100,
                    t != nullptr ? t->missRate : 0.0,
                    t != nullptr ? t->deviation.value_or(0) : 0.0,
                    m != nullptr ? m->missRate : 0.0,
                    m != nullptr ? m->deviation.value_or(0) : 0.0,
                    molecular.region(static_cast<Asid>(i)).size());
    }
    std::printf("\naverage deviation: traditional %.4f vs molecular %.4f\n",
                trad.qos.averageDeviation, mol.qos.averageDeviation);
    const AppSummary *trad_svc = trad.qos.find(Asid{0});
    const AppSummary *mol_svc = mol.qos.find(Asid{0});
    std::printf("service '%s': traditional %.4f vs molecular %.4f "
                "(goal %.2f)\n",
                kApps[0].c_str(),
                trad_svc != nullptr ? trad_svc->missRate : 0.0,
                mol_svc != nullptr ? mol_svc->missRate : 0.0, service_goal);
    return 0;
}
