/**
 * @file
 * Resize trajectory: watch Algorithm 1 work in real time.
 *
 * Drives the SPEC 4-app workload through a molecular cache and samples
 * each application's region size and interval miss rate every N
 * accesses, emitting a CSV time series (stdout or --out FILE) ready for
 * plotting.  This is the picture behind Figure 5: ammp shrinking to its
 * goal, parser growing, mcf being capped by the thrash clause.
 *
 * Usage: resize_trajectory [--size 4M] [--refs 2000000]
 *                          [--sample 50000] [--goal 0.1] [--out FILE]
 */

#include <fstream>
#include <iostream>

#include "core/molecular_cache.hpp"
#include "sim/experiment.hpp"
#include "stats/timeseries.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

int
main(int argc, char **argv)
{
    CliParser cli("resize_trajectory",
                  "CSV time series of region sizes and miss rates under "
                  "Algorithm 1");
    cli.addOption("size", "4M", "total molecular cache size");
    cli.addOption("refs", "2000000", "merged references");
    cli.addOption("sample", "50000", "accesses between samples");
    cli.addOption("goal", "0.1", "per-application miss-rate goal");
    cli.addOption("placement", "randy", "random | randy | lrudirect");
    cli.addOption("out", "", "output file (default: stdout)");
    cli.parse(argc, argv);

    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 sample_every = static_cast<u64>(cli.integer("sample"));
    const double goal = cli.real("goal");

    MolecularCache cache(fig5MolecularParams(
        Bytes{cli.size("size")}, parsePlacementPolicy(cli.str("placement"))));
    const auto apps = spec4Names();
    for (u32 i = 0; i < apps.size(); ++i)
        cache.registerApplication(Asid{static_cast<u16>(i)}, goal, ClusterId{0}, i, 1);

    std::vector<std::string> columns;
    for (const auto &app : apps) {
        columns.push_back(app + "_molecules");
        columns.push_back(app + "_missrate");
    }
    columns.push_back("free_molecules");
    TimeSeries series(columns);

    // Interval miss rates between samples, per app.
    std::vector<u64> last_accesses(apps.size(), 0);
    std::vector<u64> last_misses(apps.size(), 0);

    auto source = makeMultiProgramSource(apps, refs);
    u64 done = 0;
    auto take_sample = [&] {
        std::vector<double> row;
        for (u32 i = 0; i < apps.size(); ++i) {
            const auto &c = cache.stats().forAsid(static_cast<Asid>(i));
            const u64 da = c.accesses - last_accesses[i];
            const u64 dm = c.misses - last_misses[i];
            last_accesses[i] = c.accesses;
            last_misses[i] = c.misses;
            row.push_back(cache.region(static_cast<Asid>(i)).size());
            row.push_back(da ? static_cast<double>(dm) /
                                   static_cast<double>(da)
                             : 0.0);
        }
        row.push_back(cache.freeMolecules());
        series.sample(done, row);
    };

    while (auto access = source->next()) {
        cache.access(*access);
        if (++done % sample_every == 0)
            take_sample();
    }
    if (done % sample_every != 0)
        take_sample();

    const std::string out = cli.str("out");
    if (out.empty()) {
        series.writeCsv(std::cout);
    } else {
        std::ofstream f(out);
        if (!f)
            fatal("cannot open '", out, "' for writing");
        series.writeCsv(f);
        std::fprintf(stderr, "wrote %zu samples to %s\n", series.samples(),
                     out.c_str());
    }
    return 0;
}
