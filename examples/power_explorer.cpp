/**
 * @file
 * Power explorer: walk the CACTI-style model over cache geometries and
 * print energy/cycle-time/power tables — the tool you reach for when
 * choosing molecule and tile sizes.
 *
 * Usage examples:
 *   power_explorer                         # default sweep at 70nm
 *   power_explorer --tech 100              # other node
 *   power_explorer --size 64K --assoc 2    # evaluate one geometry
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "power/report.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"

using namespace molcache;

namespace {

void
printRow(TablePrinter &table, const CactiModel &model,
         const CacheGeometry &g, const std::string &label)
{
    const PowerTiming pt = model.evaluate(g);
    table.row({label, formatSize(g.sizeBytes), std::to_string(g.associativity),
               std::to_string(g.ports), formatDouble(pt.readEnergyNj, 3),
               formatDouble(pt.cycleNs, 2),
               formatDouble(pt.frequencyMhz(), 0),
               formatDouble(dynamicPowerWatts(pt.readEnergyNj,
                                              pt.frequencyMhz()),
                            2),
               pt.mode == AccessMode::Sequential ? "seq" : "par",
               formatDouble(pt.areaMm2, 2)});
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("power_explorer",
                  "explore the analytical cache power/timing model");
    cli.addOption("tech", "70", "technology node (130|100|70 nm)");
    cli.addOption("size", "", "evaluate a single size (e.g. 8K, 2M)");
    cli.addOption("assoc", "1", "associativity for --size");
    cli.addOption("ports", "1", "ports for --size");
    cli.parse(argc, argv);

    const CactiModel model(parseTechNode(cli.str("tech")));
    TablePrinter table({"what", "size", "assoc", "ports", "E/read (nJ)",
                        "cycle (ns)", "freq (MHz)", "power (W)", "mode",
                        "area (mm2)"});

    if (!cli.str("size").empty()) {
        CacheGeometry g;
        g.sizeBytes = Bytes{cli.size("size")};
        g.associativity = static_cast<u32>(cli.integer("assoc"));
        g.ports = static_cast<u32>(cli.integer("ports"));
        printRow(table, model, g, "requested");
        table.print(std::cout);
        return 0;
    }

    // Molecule candidates (the paper's 8-32 KB range).
    for (const Bytes size : {8_KiB, 16_KiB, 32_KiB}) {
        CacheGeometry g;
        g.sizeBytes = size;
        g.extraTagBits = 17; // ASID + shared bit
        printRow(table, model, g, "molecule");
    }
    // Monolithic L2 candidates (the paper's baselines).
    for (const Bytes size : {1_MiB, 2_MiB, 4_MiB, 8_MiB}) {
        for (const u32 assoc : {1u, 4u, 8u}) {
            CacheGeometry g;
            g.sizeBytes = size;
            g.associativity = assoc;
            g.ports = 4;
            printRow(table, model, g, "traditional");
        }
    }
    table.print(std::cout);

    // Tile cost: what one access costs as a function of enabled molecules.
    std::printf("\nmolecular tile access energy (64 x 8KiB molecules):\n");
    CacheGeometry mol;
    mol.sizeBytes = 8_KiB;
    mol.extraTagBits = 17;
    for (const u32 probed : {1u, 8u, 32u, 64u}) {
        std::printf("  %2u molecules probed: %6.3f nJ\n", probed,
                    molecularAccessEnergyNj(model, mol, 64, probed));
    }
    return 0;
}
