/**
 * @file
 * Fault drill: a guided tour of the fault-injection and graceful-
 * degradation machinery (docs/fault_model.md).
 *
 * The walkthrough: build a small molecular cache, warm two applications,
 * then (1) corrupt a line and watch parity catch it, (2) hard-fault
 * molecules until a tile outage fences a whole tile, and (3) let the
 * resizer re-acquire capacity while the invariant audit rides along,
 * verifying every layer's bookkeeping after each blow.
 */

#include <cstdio>

#include "core/molecular_cache.hpp"
#include "core/sim_access.hpp"
#include "fault/invariant_checker.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"

using namespace molcache;

namespace {

void
audit(const MolecularCache &cache, const char *when)
{
    const auto rep = InvariantChecker::check(cache);
    std::printf("  audit %-28s %llu checks, %s\n", when,
                static_cast<unsigned long long>(rep.checksRun),
                rep.ok() ? "all invariants hold" : "VIOLATIONS:");
    for (const auto &v : rep.violations)
        std::printf("    - %s\n", v.c_str());
}

void
drive(MolecularCache &cache, AccessSource &source, u64 refs)
{
    for (u64 i = 0; i < refs; ++i) {
        const auto a = source.next();
        if (!a)
            break;
        cache.access(*a);
    }
}

} // namespace

int
main()
{
    // 1. A small cache so single faults are visible: 1 cluster x 4 tiles
    //    x 16 molecules of 8 KiB => 512 KiB.
    MolecularCacheParams params;
    params.moleculeSize = 8_KiB;
    params.moleculesPerTile = 16;
    params.tilesPerCluster = 4;
    params.clusters = 1;
    params.hardFaultThreshold = 2; // ECC-style: decommission on the 2nd hit

    MolecularCache cache(params);
    // Loose goals leave free molecules in the pool — that headroom is
    // what the post-fault re-acquisition draws from.
    cache.registerApplication(Asid{0}, 0.10, ClusterId{0}, /*tile=*/0, 1);
    cache.registerApplication(Asid{1}, 0.50, ClusterId{0}, /*tile=*/1, 1);

    // The invariant audit runs every 10k accesses for the whole drill.
    InvariantChecker::attach(cache, 10'000);

    auto source = makeMultiProgramSource({"ammp", "gcc"}, 400'000);
    drive(cache, *source, 100'000);
    std::printf("warmed up: region0=%u region1=%u free=%u molecules\n",
                cache.region(Asid{0}).size(), cache.region(Asid{1}).size(),
                cache.freeMolecules());
    audit(cache, "after warmup:");

    // 2. Transient flip: corrupt a line in a region molecule.  Parity
    //    catches it on the next probe of the slot and treats it as a
    //    miss; a corrupt dirty line is data loss, never written back.
    const MoleculeId victim = cache.region(Asid{0}).rows()[0][0];
    SimAccess{cache}.injectTransientFlip(victim, 3);
    drive(cache, *source, 50'000);
    std::printf("transient flip into molecule %u: %llu detected, "
                "%llu dirty lines lost\n", victim,
                static_cast<unsigned long long>(
                    cache.faultStats().transientFlipsDetected),
                static_cast<unsigned long long>(
                    cache.faultStats().dirtyLinesLost));
    audit(cache, "after transient flip:");

    // 3. Hard faults: the first detection only counts (threshold 2), the
    //    second fences the molecule — its ASID gate never matches again
    //    and the owning region notes the capacity loss.
    SimAccess{cache}.injectHardFault(victim);
    std::printf("hard fault #1 on molecule %u: decommissioned=%s\n", victim,
                cache.molecule(victim).decommissioned() ? "yes" : "no");
    SimAccess{cache}.injectHardFault(victim);
    std::printf("hard fault #2 on molecule %u: decommissioned=%s, "
                "region0 lost %llu molecule(s)\n", victim,
                cache.molecule(victim).decommissioned() ? "yes" : "no",
                static_cast<unsigned long long>(
                    cache.region(Asid{0}).moleculesLost));
    audit(cache, "after decommission:");

    // 4. Whole-tile outage on app 1's home tile.  Everything on the tile
    //    is fenced at once; the region rebuilds from the cluster's other
    //    tiles on the following resize epochs.
    SimAccess{cache}.injectTileOutage(TileId{1});
    std::printf("tile 1 outage: %u molecules decommissioned, "
                "region1=%u molecules\n",
                cache.decommissionedMolecules(), cache.region(Asid{1}).size());
    audit(cache, "after tile outage:");

    // 5. Recovery: keep running; the resizer re-grants capacity ahead of
    //    its normal Algorithm-1 decision until the pool is drained or the
    //    holes are plugged, then steers back to the miss-rate goals.
    drive(cache, *source, 250'000);
    std::printf("after recovery: region0=%u region1=%u free=%u | "
                "recovery grants %llu | region1 reconverged in %u epochs%s\n",
                cache.region(Asid{0}).size(), cache.region(Asid{1}).size(),
                cache.freeMolecules(),
                static_cast<unsigned long long>(
                    cache.resizer().recoveryGrants()),
                cache.region(Asid{1}).lastRecoveryEpochs,
                cache.region(Asid{1}).recovering ? " (still recovering)" : "");
    audit(cache, "after recovery:");

    std::printf("invariant audits run during the drill: %llu\n",
                static_cast<unsigned long long>(InvariantChecker::auditsRun()));
    return 0;
}
