/**
 * @file
 * Trace tool: generate, convert, and inspect molcache trace files.
 *
 *   trace_tool gen --profiles art,mcf --refs 100000 --out mix.mct
 *   trace_tool gen --profiles gcc --l1-filter --out gcc_misses.mct
 *   trace_tool info mix.mct
 *   trace_tool convert mix.mct mix.txt      # binary <-> text by extension
 *   trace_tool replay mix.mct --size 1M --assoc 4
 *   trace_tool replay mix.mct --model molecular --size 2M
 *   trace_tool replay mix.mct --model waypart --assoc 8
 *
 * Demonstrates the trace I/O layer and lets molcache interoperate with
 * external trace-driven tools (the paper fed SESC traces into a modified
 * Dinero; this is the equivalent plumbing).  --l1-filter interposes the
 * per-ASID private L1s so the written trace is an L1-miss stream, the
 * paper's exact methodology.
 */

#include <cstdio>
#include <map>
#include <string>

#include "cache/set_assoc.hpp"
#include "cache/way_partitioned.hpp"
#include "core/molecular_cache.hpp"
#include "mem/filter.hpp"
#include "mem/trace.hpp"
#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

int
cmdGen(const CliParser &cli)
{
    const auto profiles = split(cli.str("profiles"), ',');
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const std::string out = cli.str("out");
    if (out.empty())
        fatal("gen needs --out <file>");

    std::unique_ptr<AccessSource> source = makeMultiProgramSource(
        profiles, refs, MixPolicy::RoundRobin,
        static_cast<u64>(cli.integer("seed")));
    if (cli.flag("l1-filter")) {
        // Emit the L1-miss stream, as SESC's recorded traces did.
        source = std::make_unique<L1FilterSource>(std::move(source),
                                                  L1Params{});
    }
    const TraceFormat format = out.size() > 4 &&
                                       out.substr(out.size() - 4) == ".txt"
                                   ? TraceFormat::Text
                                   : TraceFormat::Binary;
    TraceWriter writer(out, format);
    while (auto a = source->next())
        writer.append(*a);
    writer.close();
    std::printf("wrote %llu references to %s (%s)\n",
                static_cast<unsigned long long>(writer.recordsWritten()),
                out.c_str(),
                format == TraceFormat::Text ? "text" : "binary");
    return 0;
}

int
cmdInfo(const std::string &path)
{
    TraceReader reader(path);
    std::map<Asid, u64> per_asid;
    u64 total = 0, writes = 0;
    Addr lo = kInvalidAddr, hi = 0;
    while (auto a = reader.next()) {
        ++total;
        ++per_asid[a->asid];
        if (a->isWrite())
            ++writes;
        lo = std::min(lo, a->addr);
        hi = std::max(hi, a->addr);
    }
    std::printf("%s: %llu records (%s), %.1f%% writes\n", path.c_str(),
                static_cast<unsigned long long>(total),
                reader.format() == TraceFormat::Text ? "text" : "binary",
                total ? 100.0 * static_cast<double>(writes) /
                            static_cast<double>(total)
                      : 0.0);
    if (total) {
        std::printf("address range: %#llx .. %#llx\n",
                    static_cast<unsigned long long>(lo),
                    static_cast<unsigned long long>(hi));
    }
    for (const auto &[asid, count] : per_asid) {
        std::printf("  asid %u: %llu refs\n", asid,
                    static_cast<unsigned long long>(count));
    }
    return 0;
}

int
cmdConvert(const std::string &in, const std::string &out)
{
    const auto trace = readTrace(in);
    const TraceFormat format = out.size() > 4 &&
                                       out.substr(out.size() - 4) == ".txt"
                                   ? TraceFormat::Text
                                   : TraceFormat::Binary;
    writeTrace(out, trace, format);
    std::printf("converted %zu records %s -> %s\n", trace.size(), in.c_str(),
                out.c_str());
    return 0;
}

void
printReplay(const std::string &path, const CacheModel &cache)
{
    std::printf("replayed %s through %s\n", path.c_str(),
                cache.name().c_str());
    std::printf("global miss rate: %.4f\n",
                cache.stats().global().missRate());
    for (const auto &[asid, c] : cache.stats().perAsid()) {
        std::printf("  asid %u: %llu refs, miss rate %.4f\n", asid,
                    static_cast<unsigned long long>(c.accesses),
                    c.missRate());
    }
}

int
cmdReplay(const std::string &path, const CliParser &cli)
{
    const std::string model = cli.str("model");
    const Bytes size{cli.size("size")};
    const u32 assoc = static_cast<u32>(cli.integer("assoc"));
    const double goal = cli.real("goal");

    std::unique_ptr<CacheModel> cache;
    if (model == "setassoc") {
        SetAssocParams p;
        p.sizeBytes = size;
        p.associativity = assoc;
        cache = std::make_unique<SetAssocCache>(p);
    } else if (model == "molecular") {
        MolecularCacheParams p;
        p.moleculeSize = 8_KiB;
        p.moleculesPerTile = 64;
        p.tilesPerCluster = 4;
        if (size % p.clusterSizeBytes() != Bytes{0})
            fatal("molecular replay size must be a multiple of 2M");
        p.clusters = static_cast<u32>(size / p.clusterSizeBytes());
        p.defaultMissRateGoal = goal;
        cache = std::make_unique<MolecularCache>(p); // apps auto-register
    } else if (model == "waypart") {
        WayPartitionedParams p;
        p.sizeBytes = size;
        p.associativity = assoc;
        cache = std::make_unique<WayPartitionedCache>(p);
    } else {
        fatal("unknown --model '", model,
              "' (expected setassoc|molecular|waypart)");
    }

    TraceReader reader(path);
    while (auto a = reader.next())
        cache->access(*a);
    printReplay(path, *cache);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("trace_tool",
                  "generate / inspect / convert / replay trace files "
                  "(subcommands: gen, info, convert, replay)");
    cli.addOption("profiles", "art,mcf", "comma-separated profile names");
    cli.addOption("refs", "100000", "references to generate");
    cli.addOption("seed", "1", "RNG seed");
    cli.addOption("out", "", "output file (gen)");
    cli.addOption("size", "1M", "replay cache size");
    cli.addOption("assoc", "4", "replay cache associativity");
    cli.addOption("model", "setassoc",
                  "replay model: setassoc | molecular | waypart");
    cli.addOption("goal", "0.1", "miss-rate goal (molecular replay)");
    cli.addFlag("l1-filter", "gen: write the L1-miss stream instead of "
                             "raw references");
    cli.parse(argc, argv);

    const auto &pos = cli.positional();
    if (pos.empty())
        fatal("need a subcommand: gen | info <file> | convert <in> <out> | "
              "replay <file>");
    const std::string &cmd = pos[0];
    if (cmd == "gen")
        return cmdGen(cli);
    if (cmd == "info" && pos.size() >= 2)
        return cmdInfo(pos[1]);
    if (cmd == "convert" && pos.size() >= 3)
        return cmdConvert(pos[1], pos[2]);
    if (cmd == "replay" && pos.size() >= 2)
        return cmdReplay(pos[1], cli);
    fatal("bad subcommand or missing arguments (see --help)");
}
