file(REMOVE_RECURSE
  "libmolcache_util.a"
)
