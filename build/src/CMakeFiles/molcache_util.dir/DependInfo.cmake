
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/molcache_util.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/molcache_util.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/config.cpp" "src/CMakeFiles/molcache_util.dir/util/config.cpp.o" "gcc" "src/CMakeFiles/molcache_util.dir/util/config.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/molcache_util.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/molcache_util.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/random.cpp" "src/CMakeFiles/molcache_util.dir/util/random.cpp.o" "gcc" "src/CMakeFiles/molcache_util.dir/util/random.cpp.o.d"
  "/root/repo/src/util/string_utils.cpp" "src/CMakeFiles/molcache_util.dir/util/string_utils.cpp.o" "gcc" "src/CMakeFiles/molcache_util.dir/util/string_utils.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
