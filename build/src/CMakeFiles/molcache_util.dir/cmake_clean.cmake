file(REMOVE_RECURSE
  "CMakeFiles/molcache_util.dir/util/cli.cpp.o"
  "CMakeFiles/molcache_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/molcache_util.dir/util/config.cpp.o"
  "CMakeFiles/molcache_util.dir/util/config.cpp.o.d"
  "CMakeFiles/molcache_util.dir/util/logging.cpp.o"
  "CMakeFiles/molcache_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/molcache_util.dir/util/random.cpp.o"
  "CMakeFiles/molcache_util.dir/util/random.cpp.o.d"
  "CMakeFiles/molcache_util.dir/util/string_utils.cpp.o"
  "CMakeFiles/molcache_util.dir/util/string_utils.cpp.o.d"
  "libmolcache_util.a"
  "libmolcache_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molcache_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
