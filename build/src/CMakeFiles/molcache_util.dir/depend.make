# Empty dependencies file for molcache_util.
# This may be replaced when dependencies are built.
