# Empty compiler generated dependencies file for molcache_noc.
# This may be replaced when dependencies are built.
