file(REMOVE_RECURSE
  "libmolcache_noc.a"
)
