file(REMOVE_RECURSE
  "CMakeFiles/molcache_noc.dir/noc/topology.cpp.o"
  "CMakeFiles/molcache_noc.dir/noc/topology.cpp.o.d"
  "libmolcache_noc.a"
  "libmolcache_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molcache_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
