file(REMOVE_RECURSE
  "libmolcache_workload.a"
)
