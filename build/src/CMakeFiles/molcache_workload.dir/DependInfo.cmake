
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/molcache_workload.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/molcache_workload.dir/workload/generator.cpp.o.d"
  "/root/repo/src/workload/profile.cpp" "src/CMakeFiles/molcache_workload.dir/workload/profile.cpp.o" "gcc" "src/CMakeFiles/molcache_workload.dir/workload/profile.cpp.o.d"
  "/root/repo/src/workload/profiles.cpp" "src/CMakeFiles/molcache_workload.dir/workload/profiles.cpp.o" "gcc" "src/CMakeFiles/molcache_workload.dir/workload/profiles.cpp.o.d"
  "/root/repo/src/workload/streams.cpp" "src/CMakeFiles/molcache_workload.dir/workload/streams.cpp.o" "gcc" "src/CMakeFiles/molcache_workload.dir/workload/streams.cpp.o.d"
  "/root/repo/src/workload/zipf.cpp" "src/CMakeFiles/molcache_workload.dir/workload/zipf.cpp.o" "gcc" "src/CMakeFiles/molcache_workload.dir/workload/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/molcache_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
