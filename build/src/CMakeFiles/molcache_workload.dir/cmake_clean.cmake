file(REMOVE_RECURSE
  "CMakeFiles/molcache_workload.dir/workload/generator.cpp.o"
  "CMakeFiles/molcache_workload.dir/workload/generator.cpp.o.d"
  "CMakeFiles/molcache_workload.dir/workload/profile.cpp.o"
  "CMakeFiles/molcache_workload.dir/workload/profile.cpp.o.d"
  "CMakeFiles/molcache_workload.dir/workload/profiles.cpp.o"
  "CMakeFiles/molcache_workload.dir/workload/profiles.cpp.o.d"
  "CMakeFiles/molcache_workload.dir/workload/streams.cpp.o"
  "CMakeFiles/molcache_workload.dir/workload/streams.cpp.o.d"
  "CMakeFiles/molcache_workload.dir/workload/zipf.cpp.o"
  "CMakeFiles/molcache_workload.dir/workload/zipf.cpp.o.d"
  "libmolcache_workload.a"
  "libmolcache_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molcache_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
