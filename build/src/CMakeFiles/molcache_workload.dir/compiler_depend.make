# Empty compiler generated dependencies file for molcache_workload.
# This may be replaced when dependencies are built.
