file(REMOVE_RECURSE
  "CMakeFiles/molcache_core.dir/core/coherence.cpp.o"
  "CMakeFiles/molcache_core.dir/core/coherence.cpp.o.d"
  "CMakeFiles/molcache_core.dir/core/molecular_cache.cpp.o"
  "CMakeFiles/molcache_core.dir/core/molecular_cache.cpp.o.d"
  "CMakeFiles/molcache_core.dir/core/molecule.cpp.o"
  "CMakeFiles/molcache_core.dir/core/molecule.cpp.o.d"
  "CMakeFiles/molcache_core.dir/core/params.cpp.o"
  "CMakeFiles/molcache_core.dir/core/params.cpp.o.d"
  "CMakeFiles/molcache_core.dir/core/placement.cpp.o"
  "CMakeFiles/molcache_core.dir/core/placement.cpp.o.d"
  "CMakeFiles/molcache_core.dir/core/region.cpp.o"
  "CMakeFiles/molcache_core.dir/core/region.cpp.o.d"
  "CMakeFiles/molcache_core.dir/core/resizer.cpp.o"
  "CMakeFiles/molcache_core.dir/core/resizer.cpp.o.d"
  "CMakeFiles/molcache_core.dir/core/tile.cpp.o"
  "CMakeFiles/molcache_core.dir/core/tile.cpp.o.d"
  "CMakeFiles/molcache_core.dir/core/ulmo.cpp.o"
  "CMakeFiles/molcache_core.dir/core/ulmo.cpp.o.d"
  "libmolcache_core.a"
  "libmolcache_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molcache_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
