
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coherence.cpp" "src/CMakeFiles/molcache_core.dir/core/coherence.cpp.o" "gcc" "src/CMakeFiles/molcache_core.dir/core/coherence.cpp.o.d"
  "/root/repo/src/core/molecular_cache.cpp" "src/CMakeFiles/molcache_core.dir/core/molecular_cache.cpp.o" "gcc" "src/CMakeFiles/molcache_core.dir/core/molecular_cache.cpp.o.d"
  "/root/repo/src/core/molecule.cpp" "src/CMakeFiles/molcache_core.dir/core/molecule.cpp.o" "gcc" "src/CMakeFiles/molcache_core.dir/core/molecule.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/molcache_core.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/molcache_core.dir/core/params.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/CMakeFiles/molcache_core.dir/core/placement.cpp.o" "gcc" "src/CMakeFiles/molcache_core.dir/core/placement.cpp.o.d"
  "/root/repo/src/core/region.cpp" "src/CMakeFiles/molcache_core.dir/core/region.cpp.o" "gcc" "src/CMakeFiles/molcache_core.dir/core/region.cpp.o.d"
  "/root/repo/src/core/resizer.cpp" "src/CMakeFiles/molcache_core.dir/core/resizer.cpp.o" "gcc" "src/CMakeFiles/molcache_core.dir/core/resizer.cpp.o.d"
  "/root/repo/src/core/tile.cpp" "src/CMakeFiles/molcache_core.dir/core/tile.cpp.o" "gcc" "src/CMakeFiles/molcache_core.dir/core/tile.cpp.o.d"
  "/root/repo/src/core/ulmo.cpp" "src/CMakeFiles/molcache_core.dir/core/ulmo.cpp.o" "gcc" "src/CMakeFiles/molcache_core.dir/core/ulmo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/molcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
