# Empty dependencies file for molcache_core.
# This may be replaced when dependencies are built.
