file(REMOVE_RECURSE
  "libmolcache_core.a"
)
