file(REMOVE_RECURSE
  "libmolcache_sim.a"
)
