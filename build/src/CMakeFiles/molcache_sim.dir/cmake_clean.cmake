file(REMOVE_RECURSE
  "CMakeFiles/molcache_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/molcache_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/molcache_sim.dir/sim/qos.cpp.o"
  "CMakeFiles/molcache_sim.dir/sim/qos.cpp.o.d"
  "CMakeFiles/molcache_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/molcache_sim.dir/sim/simulator.cpp.o.d"
  "libmolcache_sim.a"
  "libmolcache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molcache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
