
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/molcache_sim.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/molcache_sim.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/qos.cpp" "src/CMakeFiles/molcache_sim.dir/sim/qos.cpp.o" "gcc" "src/CMakeFiles/molcache_sim.dir/sim/qos.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/molcache_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/molcache_sim.dir/sim/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/molcache_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
