# Empty compiler generated dependencies file for molcache_sim.
# This may be replaced when dependencies are built.
