# Empty dependencies file for molcache_power.
# This may be replaced when dependencies are built.
