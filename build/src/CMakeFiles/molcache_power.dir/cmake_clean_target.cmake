file(REMOVE_RECURSE
  "libmolcache_power.a"
)
