file(REMOVE_RECURSE
  "CMakeFiles/molcache_power.dir/power/cacti.cpp.o"
  "CMakeFiles/molcache_power.dir/power/cacti.cpp.o.d"
  "CMakeFiles/molcache_power.dir/power/report.cpp.o"
  "CMakeFiles/molcache_power.dir/power/report.cpp.o.d"
  "CMakeFiles/molcache_power.dir/power/tech.cpp.o"
  "CMakeFiles/molcache_power.dir/power/tech.cpp.o.d"
  "libmolcache_power.a"
  "libmolcache_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molcache_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
