
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/cacti.cpp" "src/CMakeFiles/molcache_power.dir/power/cacti.cpp.o" "gcc" "src/CMakeFiles/molcache_power.dir/power/cacti.cpp.o.d"
  "/root/repo/src/power/report.cpp" "src/CMakeFiles/molcache_power.dir/power/report.cpp.o" "gcc" "src/CMakeFiles/molcache_power.dir/power/report.cpp.o.d"
  "/root/repo/src/power/tech.cpp" "src/CMakeFiles/molcache_power.dir/power/tech.cpp.o" "gcc" "src/CMakeFiles/molcache_power.dir/power/tech.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/molcache_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
