# Empty compiler generated dependencies file for molcache_mem.
# This may be replaced when dependencies are built.
