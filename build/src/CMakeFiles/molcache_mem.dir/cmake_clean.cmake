file(REMOVE_RECURSE
  "CMakeFiles/molcache_mem.dir/mem/filter.cpp.o"
  "CMakeFiles/molcache_mem.dir/mem/filter.cpp.o.d"
  "CMakeFiles/molcache_mem.dir/mem/interleave.cpp.o"
  "CMakeFiles/molcache_mem.dir/mem/interleave.cpp.o.d"
  "CMakeFiles/molcache_mem.dir/mem/trace.cpp.o"
  "CMakeFiles/molcache_mem.dir/mem/trace.cpp.o.d"
  "libmolcache_mem.a"
  "libmolcache_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molcache_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
