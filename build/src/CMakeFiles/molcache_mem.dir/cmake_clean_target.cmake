file(REMOVE_RECURSE
  "libmolcache_mem.a"
)
