
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/filter.cpp" "src/CMakeFiles/molcache_mem.dir/mem/filter.cpp.o" "gcc" "src/CMakeFiles/molcache_mem.dir/mem/filter.cpp.o.d"
  "/root/repo/src/mem/interleave.cpp" "src/CMakeFiles/molcache_mem.dir/mem/interleave.cpp.o" "gcc" "src/CMakeFiles/molcache_mem.dir/mem/interleave.cpp.o.d"
  "/root/repo/src/mem/trace.cpp" "src/CMakeFiles/molcache_mem.dir/mem/trace.cpp.o" "gcc" "src/CMakeFiles/molcache_mem.dir/mem/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/molcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
