file(REMOVE_RECURSE
  "libmolcache_stats.a"
)
