file(REMOVE_RECURSE
  "CMakeFiles/molcache_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/molcache_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/molcache_stats.dir/stats/json.cpp.o"
  "CMakeFiles/molcache_stats.dir/stats/json.cpp.o.d"
  "CMakeFiles/molcache_stats.dir/stats/metrics.cpp.o"
  "CMakeFiles/molcache_stats.dir/stats/metrics.cpp.o.d"
  "CMakeFiles/molcache_stats.dir/stats/table.cpp.o"
  "CMakeFiles/molcache_stats.dir/stats/table.cpp.o.d"
  "CMakeFiles/molcache_stats.dir/stats/timeseries.cpp.o"
  "CMakeFiles/molcache_stats.dir/stats/timeseries.cpp.o.d"
  "libmolcache_stats.a"
  "libmolcache_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molcache_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
