# Empty compiler generated dependencies file for molcache_stats.
# This may be replaced when dependencies are built.
