# Empty dependencies file for molcache_cache.
# This may be replaced when dependencies are built.
