
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_stats.cpp" "src/CMakeFiles/molcache_cache.dir/cache/cache_stats.cpp.o" "gcc" "src/CMakeFiles/molcache_cache.dir/cache/cache_stats.cpp.o.d"
  "/root/repo/src/cache/replacement.cpp" "src/CMakeFiles/molcache_cache.dir/cache/replacement.cpp.o" "gcc" "src/CMakeFiles/molcache_cache.dir/cache/replacement.cpp.o.d"
  "/root/repo/src/cache/set_assoc.cpp" "src/CMakeFiles/molcache_cache.dir/cache/set_assoc.cpp.o" "gcc" "src/CMakeFiles/molcache_cache.dir/cache/set_assoc.cpp.o.d"
  "/root/repo/src/cache/way_partitioned.cpp" "src/CMakeFiles/molcache_cache.dir/cache/way_partitioned.cpp.o" "gcc" "src/CMakeFiles/molcache_cache.dir/cache/way_partitioned.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/molcache_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
