file(REMOVE_RECURSE
  "CMakeFiles/molcache_cache.dir/cache/cache_stats.cpp.o"
  "CMakeFiles/molcache_cache.dir/cache/cache_stats.cpp.o.d"
  "CMakeFiles/molcache_cache.dir/cache/replacement.cpp.o"
  "CMakeFiles/molcache_cache.dir/cache/replacement.cpp.o.d"
  "CMakeFiles/molcache_cache.dir/cache/set_assoc.cpp.o"
  "CMakeFiles/molcache_cache.dir/cache/set_assoc.cpp.o.d"
  "CMakeFiles/molcache_cache.dir/cache/way_partitioned.cpp.o"
  "CMakeFiles/molcache_cache.dir/cache/way_partitioned.cpp.o.d"
  "libmolcache_cache.a"
  "libmolcache_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molcache_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
