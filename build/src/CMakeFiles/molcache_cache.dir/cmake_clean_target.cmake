file(REMOVE_RECURSE
  "libmolcache_cache.a"
)
