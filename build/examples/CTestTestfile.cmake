# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiprogram_qos "/root/repo/build/examples/multiprogram_qos" "--refs" "200000")
set_tests_properties(example_multiprogram_qos PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_power_explorer "/root/repo/build/examples/power_explorer")
set_tests_properties(example_power_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_resize_trajectory "/root/repo/build/examples/resize_trajectory" "--refs" "200000" "--sample" "50000")
set_tests_properties(example_resize_trajectory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_experiment_runner "/root/repo/build/examples/experiment_runner" "/root/repo/examples/experiment.cfg" "refs=100000")
set_tests_properties(example_experiment_runner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tool "sh" "-c" "./trace_tool gen --profiles ammp,gcc --refs 20000 --out tt.mct           && ./trace_tool info tt.mct           && ./trace_tool convert tt.mct tt.txt           && ./trace_tool replay tt.txt --model molecular --size 2M           && rm -f tt.mct tt.txt")
set_tests_properties(example_trace_tool PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
