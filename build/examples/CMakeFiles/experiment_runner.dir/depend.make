# Empty dependencies file for experiment_runner.
# This may be replaced when dependencies are built.
