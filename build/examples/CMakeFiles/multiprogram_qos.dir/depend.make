# Empty dependencies file for multiprogram_qos.
# This may be replaced when dependencies are built.
