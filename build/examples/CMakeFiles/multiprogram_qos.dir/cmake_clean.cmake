file(REMOVE_RECURSE
  "CMakeFiles/multiprogram_qos.dir/multiprogram_qos.cpp.o"
  "CMakeFiles/multiprogram_qos.dir/multiprogram_qos.cpp.o.d"
  "multiprogram_qos"
  "multiprogram_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprogram_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
