file(REMOVE_RECURSE
  "CMakeFiles/resize_trajectory.dir/resize_trajectory.cpp.o"
  "CMakeFiles/resize_trajectory.dir/resize_trajectory.cpp.o.d"
  "resize_trajectory"
  "resize_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resize_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
