# Empty compiler generated dependencies file for resize_trajectory.
# This may be replaced when dependencies are built.
