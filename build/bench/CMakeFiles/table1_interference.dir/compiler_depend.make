# Empty compiler generated dependencies file for table1_interference.
# This may be replaced when dependencies are built.
