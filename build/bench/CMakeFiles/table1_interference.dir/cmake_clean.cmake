file(REMOVE_RECURSE
  "CMakeFiles/table1_interference.dir/table1_interference.cpp.o"
  "CMakeFiles/table1_interference.dir/table1_interference.cpp.o.d"
  "table1_interference"
  "table1_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
