# Empty compiler generated dependencies file for latency_report.
# This may be replaced when dependencies are built.
