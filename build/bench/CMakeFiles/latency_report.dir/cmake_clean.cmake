file(REMOVE_RECURSE
  "CMakeFiles/latency_report.dir/latency_report.cpp.o"
  "CMakeFiles/latency_report.dir/latency_report.cpp.o.d"
  "latency_report"
  "latency_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
