# Empty dependencies file for latency_report.
# This may be replaced when dependencies are built.
