file(REMOVE_RECURSE
  "CMakeFiles/table4_power.dir/table4_power.cpp.o"
  "CMakeFiles/table4_power.dir/table4_power.cpp.o.d"
  "table4_power"
  "table4_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
