# Empty dependencies file for table4_power.
# This may be replaced when dependencies are built.
