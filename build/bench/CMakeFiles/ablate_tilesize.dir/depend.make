# Empty dependencies file for ablate_tilesize.
# This may be replaced when dependencies are built.
