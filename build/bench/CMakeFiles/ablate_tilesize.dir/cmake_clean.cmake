file(REMOVE_RECURSE
  "CMakeFiles/ablate_tilesize.dir/ablate_tilesize.cpp.o"
  "CMakeFiles/ablate_tilesize.dir/ablate_tilesize.cpp.o.d"
  "ablate_tilesize"
  "ablate_tilesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_tilesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
