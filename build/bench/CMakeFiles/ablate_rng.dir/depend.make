# Empty dependencies file for ablate_rng.
# This may be replaced when dependencies are built.
