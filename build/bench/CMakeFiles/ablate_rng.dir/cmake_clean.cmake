file(REMOVE_RECURSE
  "CMakeFiles/ablate_rng.dir/ablate_rng.cpp.o"
  "CMakeFiles/ablate_rng.dir/ablate_rng.cpp.o.d"
  "ablate_rng"
  "ablate_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
