# Empty dependencies file for table5_pdp.
# This may be replaced when dependencies are built.
