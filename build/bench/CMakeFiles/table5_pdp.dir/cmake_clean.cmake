file(REMOVE_RECURSE
  "CMakeFiles/table5_pdp.dir/table5_pdp.cpp.o"
  "CMakeFiles/table5_pdp.dir/table5_pdp.cpp.o.d"
  "table5_pdp"
  "table5_pdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_pdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
