file(REMOVE_RECURSE
  "CMakeFiles/ablate_resize.dir/ablate_resize.cpp.o"
  "CMakeFiles/ablate_resize.dir/ablate_resize.cpp.o.d"
  "ablate_resize"
  "ablate_resize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
