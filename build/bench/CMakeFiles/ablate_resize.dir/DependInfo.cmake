
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_resize.cpp" "bench/CMakeFiles/ablate_resize.dir/ablate_resize.cpp.o" "gcc" "bench/CMakeFiles/ablate_resize.dir/ablate_resize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/molcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
