# Empty dependencies file for ablate_resize.
# This may be replaced when dependencies are built.
