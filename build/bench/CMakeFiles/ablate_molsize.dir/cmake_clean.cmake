file(REMOVE_RECURSE
  "CMakeFiles/ablate_molsize.dir/ablate_molsize.cpp.o"
  "CMakeFiles/ablate_molsize.dir/ablate_molsize.cpp.o.d"
  "ablate_molsize"
  "ablate_molsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_molsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
