# Empty dependencies file for ablate_molsize.
# This may be replaced when dependencies are built.
