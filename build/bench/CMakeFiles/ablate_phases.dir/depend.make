# Empty dependencies file for ablate_phases.
# This may be replaced when dependencies are built.
