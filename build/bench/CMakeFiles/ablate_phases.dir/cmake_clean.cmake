file(REMOVE_RECURSE
  "CMakeFiles/ablate_phases.dir/ablate_phases.cpp.o"
  "CMakeFiles/ablate_phases.dir/ablate_phases.cpp.o.d"
  "ablate_phases"
  "ablate_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
