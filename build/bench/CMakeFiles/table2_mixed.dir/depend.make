# Empty dependencies file for table2_mixed.
# This may be replaced when dependencies are built.
