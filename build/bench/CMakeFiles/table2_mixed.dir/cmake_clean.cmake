file(REMOVE_RECURSE
  "CMakeFiles/table2_mixed.dir/table2_mixed.cpp.o"
  "CMakeFiles/table2_mixed.dir/table2_mixed.cpp.o.d"
  "table2_mixed"
  "table2_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
