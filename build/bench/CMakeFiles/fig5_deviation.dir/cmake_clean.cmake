file(REMOVE_RECURSE
  "CMakeFiles/fig5_deviation.dir/fig5_deviation.cpp.o"
  "CMakeFiles/fig5_deviation.dir/fig5_deviation.cpp.o.d"
  "fig5_deviation"
  "fig5_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
