# Empty compiler generated dependencies file for fig5_deviation.
# This may be replaced when dependencies are built.
