file(REMOVE_RECURSE
  "CMakeFiles/ablate_linesize.dir/ablate_linesize.cpp.o"
  "CMakeFiles/ablate_linesize.dir/ablate_linesize.cpp.o.d"
  "ablate_linesize"
  "ablate_linesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_linesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
