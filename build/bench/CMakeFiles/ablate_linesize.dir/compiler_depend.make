# Empty compiler generated dependencies file for ablate_linesize.
# This may be replaced when dependencies are built.
