# Empty compiler generated dependencies file for ablate_initial.
# This may be replaced when dependencies are built.
