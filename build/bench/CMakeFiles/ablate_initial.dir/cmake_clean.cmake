file(REMOVE_RECURSE
  "CMakeFiles/ablate_initial.dir/ablate_initial.cpp.o"
  "CMakeFiles/ablate_initial.dir/ablate_initial.cpp.o.d"
  "ablate_initial"
  "ablate_initial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_initial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
