file(REMOVE_RECURSE
  "CMakeFiles/ablate_placement.dir/ablate_placement.cpp.o"
  "CMakeFiles/ablate_placement.dir/ablate_placement.cpp.o.d"
  "ablate_placement"
  "ablate_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
