# Empty dependencies file for ablate_placement.
# This may be replaced when dependencies are built.
