# Empty dependencies file for fig6_hpm.
# This may be replaced when dependencies are built.
