file(REMOVE_RECURSE
  "CMakeFiles/fig6_hpm.dir/fig6_hpm.cpp.o"
  "CMakeFiles/fig6_hpm.dir/fig6_hpm.cpp.o.d"
  "fig6_hpm"
  "fig6_hpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
