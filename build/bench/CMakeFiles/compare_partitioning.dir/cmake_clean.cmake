file(REMOVE_RECURSE
  "CMakeFiles/compare_partitioning.dir/compare_partitioning.cpp.o"
  "CMakeFiles/compare_partitioning.dir/compare_partitioning.cpp.o.d"
  "compare_partitioning"
  "compare_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
