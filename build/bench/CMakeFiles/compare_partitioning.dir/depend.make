# Empty dependencies file for compare_partitioning.
# This may be replaced when dependencies are built.
