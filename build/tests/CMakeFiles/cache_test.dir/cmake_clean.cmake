file(REMOVE_RECURSE
  "CMakeFiles/cache_test.dir/cache/cache_stats_test.cpp.o"
  "CMakeFiles/cache_test.dir/cache/cache_stats_test.cpp.o.d"
  "CMakeFiles/cache_test.dir/cache/replacement_test.cpp.o"
  "CMakeFiles/cache_test.dir/cache/replacement_test.cpp.o.d"
  "CMakeFiles/cache_test.dir/cache/set_assoc_test.cpp.o"
  "CMakeFiles/cache_test.dir/cache/set_assoc_test.cpp.o.d"
  "CMakeFiles/cache_test.dir/cache/way_partitioned_test.cpp.o"
  "CMakeFiles/cache_test.dir/cache/way_partitioned_test.cpp.o.d"
  "cache_test"
  "cache_test.pdb"
  "cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
