
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/coherence_test.cpp" "tests/CMakeFiles/core_test.dir/core/coherence_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/coherence_test.cpp.o.d"
  "/root/repo/tests/core/invariant_fuzz_test.cpp" "tests/CMakeFiles/core_test.dir/core/invariant_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/invariant_fuzz_test.cpp.o.d"
  "/root/repo/tests/core/lru_direct_test.cpp" "tests/CMakeFiles/core_test.dir/core/lru_direct_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/lru_direct_test.cpp.o.d"
  "/root/repo/tests/core/migration_test.cpp" "tests/CMakeFiles/core_test.dir/core/migration_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/migration_test.cpp.o.d"
  "/root/repo/tests/core/molecular_cache_test.cpp" "tests/CMakeFiles/core_test.dir/core/molecular_cache_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/molecular_cache_test.cpp.o.d"
  "/root/repo/tests/core/molecule_test.cpp" "tests/CMakeFiles/core_test.dir/core/molecule_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/molecule_test.cpp.o.d"
  "/root/repo/tests/core/placement_test.cpp" "tests/CMakeFiles/core_test.dir/core/placement_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/placement_test.cpp.o.d"
  "/root/repo/tests/core/region_test.cpp" "tests/CMakeFiles/core_test.dir/core/region_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/region_test.cpp.o.d"
  "/root/repo/tests/core/resizer_test.cpp" "tests/CMakeFiles/core_test.dir/core/resizer_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/resizer_test.cpp.o.d"
  "/root/repo/tests/core/tile_test.cpp" "tests/CMakeFiles/core_test.dir/core/tile_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/tile_test.cpp.o.d"
  "/root/repo/tests/core/ulmo_test.cpp" "tests/CMakeFiles/core_test.dir/core/ulmo_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ulmo_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/molcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
