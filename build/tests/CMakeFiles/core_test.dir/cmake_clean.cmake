file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/coherence_test.cpp.o"
  "CMakeFiles/core_test.dir/core/coherence_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/invariant_fuzz_test.cpp.o"
  "CMakeFiles/core_test.dir/core/invariant_fuzz_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/lru_direct_test.cpp.o"
  "CMakeFiles/core_test.dir/core/lru_direct_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/migration_test.cpp.o"
  "CMakeFiles/core_test.dir/core/migration_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/molecular_cache_test.cpp.o"
  "CMakeFiles/core_test.dir/core/molecular_cache_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/molecule_test.cpp.o"
  "CMakeFiles/core_test.dir/core/molecule_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/placement_test.cpp.o"
  "CMakeFiles/core_test.dir/core/placement_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/region_test.cpp.o"
  "CMakeFiles/core_test.dir/core/region_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/resizer_test.cpp.o"
  "CMakeFiles/core_test.dir/core/resizer_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/tile_test.cpp.o"
  "CMakeFiles/core_test.dir/core/tile_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/ulmo_test.cpp.o"
  "CMakeFiles/core_test.dir/core/ulmo_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
