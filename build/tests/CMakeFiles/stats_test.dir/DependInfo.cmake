
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/counter_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/counter_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/counter_test.cpp.o.d"
  "/root/repo/tests/stats/histogram_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/histogram_test.cpp.o.d"
  "/root/repo/tests/stats/json_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/json_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/json_test.cpp.o.d"
  "/root/repo/tests/stats/metrics_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/metrics_test.cpp.o.d"
  "/root/repo/tests/stats/running_stats_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/running_stats_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/running_stats_test.cpp.o.d"
  "/root/repo/tests/stats/table_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/table_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/table_test.cpp.o.d"
  "/root/repo/tests/stats/timeseries_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/timeseries_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/molcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/molcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
