file(REMOVE_RECURSE
  "CMakeFiles/stats_test.dir/stats/counter_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/counter_test.cpp.o.d"
  "CMakeFiles/stats_test.dir/stats/histogram_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/histogram_test.cpp.o.d"
  "CMakeFiles/stats_test.dir/stats/json_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/json_test.cpp.o.d"
  "CMakeFiles/stats_test.dir/stats/metrics_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/metrics_test.cpp.o.d"
  "CMakeFiles/stats_test.dir/stats/running_stats_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/running_stats_test.cpp.o.d"
  "CMakeFiles/stats_test.dir/stats/table_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/table_test.cpp.o.d"
  "CMakeFiles/stats_test.dir/stats/timeseries_test.cpp.o"
  "CMakeFiles/stats_test.dir/stats/timeseries_test.cpp.o.d"
  "stats_test"
  "stats_test.pdb"
  "stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
