file(REMOVE_RECURSE
  "CMakeFiles/mem_test.dir/mem/filter_test.cpp.o"
  "CMakeFiles/mem_test.dir/mem/filter_test.cpp.o.d"
  "CMakeFiles/mem_test.dir/mem/interleave_test.cpp.o"
  "CMakeFiles/mem_test.dir/mem/interleave_test.cpp.o.d"
  "CMakeFiles/mem_test.dir/mem/trace_test.cpp.o"
  "CMakeFiles/mem_test.dir/mem/trace_test.cpp.o.d"
  "mem_test"
  "mem_test.pdb"
  "mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
