// Negative fixture for the concurrency rule family: the blessed idioms
// that must NOT trigger findings — annotated wrappers instead of raw
// primitives, explicit memory orders on every atomic op, callbacks
// invoked outside the critical section (or inside with the documented
// allow tag), and no raw/detached threads.
#include <atomic>
#include <functional>

#include "util/sync.hpp"

namespace molcache {

struct GoodProgress
{
    mc::Mutex mutex;
    unsigned long done = 0;
};

void
goodNotify(GoodProgress &p, std::atomic<unsigned long> &pending,
           const std::function<void(unsigned long)> &callback)
{
    unsigned long snapshot = 0;
    {
        mc::MutexLock lock(p.mutex);
        snapshot = ++p.done;
    }
    callback(snapshot); // the lock scope closed above: no finding
    pending.fetch_sub(1, std::memory_order_acq_rel);
    pending.store(0, std::memory_order_release);
    (void)pending.load(std::memory_order_acquire);
}

void
goodSerializedNotify(GoodProgress &p,
                     const std::function<void(unsigned long)> &callback)
{
    mc::MutexLock lock(p.mutex);
    // lint: allow(lock-across-call): serialization is this helper's
    // documented contract; the callback cannot re-enter.
    callback(++p.done);
}

} // namespace molcache
