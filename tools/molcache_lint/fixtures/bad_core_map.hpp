// Negative fixture: node-based container members in a (pretend)
// src/core hot-path class.  The bare members must fire hot-path-map;
// the annotated ones are allowlisted and must not.
#ifndef MOLCACHE_FIXTURE_BAD_CORE_MAP_HPP
#define MOLCACHE_FIXTURE_BAD_CORE_MAP_HPP

#include <list>
#include <map>
#include <set>
#include <unordered_map>

#include "util/types.hpp"

namespace molcache {

class BadCoreMap
{
  public:
    // Return types and locals are fine; only members are hot state.
    std::map<u32, double> snapshot() const;

  private:
    std::unordered_map<u64, u32> index_; // hot-path-map

    // Genuinely sparse, never walked per access.  molcache-lint: allow-map
    std::map<u64, u32> sparse_;

    // Batch-plane lane structs use plain member names (no trailing
    // underscore); the rule must hold them to the same dense-layout
    // bar.
    struct BadBatchLane
    {
        std::list<u64> pendingRefs;   // hot-path-map
        std::set<u32> touchedTiles;   // hot-path-map

        // Cold, rebuilt only on generation change.  molcache-lint: allow-map
        std::map<u32, u32> rebuildScratch;
    };
};

} // namespace molcache

#endif // MOLCACHE_FIXTURE_BAD_CORE_MAP_HPP
