// Negative fixture: a node-based map member in a (pretend) src/core
// hot-path class.  The bare member must fire hot-path-map; the
// annotated one is allowlisted and must not.
#ifndef MOLCACHE_FIXTURE_BAD_CORE_MAP_HPP
#define MOLCACHE_FIXTURE_BAD_CORE_MAP_HPP

#include <map>
#include <unordered_map>

#include "util/types.hpp"

namespace molcache {

class BadCoreMap
{
  public:
    // Return types and locals are fine; only members are hot state.
    std::map<u32, double> snapshot() const;

  private:
    std::unordered_map<u64, u32> index_; // hot-path-map

    // Genuinely sparse, never walked per access.  molcache-lint: allow-map
    std::map<u64, u32> sparse_;
};

} // namespace molcache

#endif // MOLCACHE_FIXTURE_BAD_CORE_MAP_HPP
