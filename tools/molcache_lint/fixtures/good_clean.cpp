// Positive fixture: idiomatic code no rule may flag.
#include "contract/contract.hpp"
#include "core/region.hpp"
#include "util/config.hpp"
#include "util/random.hpp"

namespace molcache {

void
clean(Region &region, const Config &cfg, Pcg32 &rng)
{
    MOLCACHE_EXPECT(cfg.getSize("molecule", 8192) > 0);
    (void)cfg.getBool("guardian.predictive.enabled", false);
    (void)cfg.getDouble("workload.hint.drop", 0.0);
    region.addMolecule(MoleculeId{3}, TileId{0}, false);
    (void)rng.below(4); // seeded randomness is fine
}

} // namespace molcache
