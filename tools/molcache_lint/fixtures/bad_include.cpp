// Negative fixture: include hygiene + assert() in src/.
#include "../core/tile.hpp" // include-hygiene: relative include
#include <cassert>          // include-hygiene: cassert in src/
#include <vector>
#include <vector>           // include-hygiene: duplicate

void
checkIt(int v)
{
    assert(v > 0); // no-assert
}
