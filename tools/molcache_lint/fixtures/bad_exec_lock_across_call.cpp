// Positive fixture for `lock-across-call`: exec code invoking a user
// callback while an mc::MutexLock is held.  The callback can run for
// seconds or call back into the locked object; copy the state out and
// invoke after the scope closes (or tag the documented exceptions).
#include <functional>

#include "util/sync.hpp"

namespace molcache {

void
notifyUnderLock(mc::Mutex &mutex, unsigned long &count,
                const std::function<void(unsigned long)> &callback)
{
    mc::MutexLock lock(mutex);
    callback(++count); // finding: user code inside the critical section
}

} // namespace molcache
