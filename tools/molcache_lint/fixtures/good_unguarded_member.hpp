// Negative fixture for `unguarded-member`: a mutex-holding class whose
// every member is either TSA-annotated, self-describing (atomic, const,
// the sync primitives themselves), or explicitly tagged with the
// `// lint: unguarded(<why>)` escape hatch.
#ifndef FIXTURE_GOOD_UNGUARDED_MEMBER_HPP
#define FIXTURE_GOOD_UNGUARDED_MEMBER_HPP

#include <atomic>

#include "util/sync.hpp"
#include "util/types.hpp"

namespace molcache {

class GoodCounters
{
  public:
    void bump();

  private:
    mc::Mutex mutex_;
    mc::CondVar changed_;
    u64 hits_ MOLCACHE_GUARDED_BY(mutex_) = 0;
    std::atomic<u64> fastHits_{0};
    // lint: unguarded(written once during construction, read-only after)
    u64 capacity_ = 0;
    const u64 limit_ = 8;
};

} // namespace molcache

#endif // FIXTURE_GOOD_UNGUARDED_MEMBER_HPP
