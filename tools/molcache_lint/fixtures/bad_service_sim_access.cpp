// Negative fixture: the concurrent service layer reaching for
// SimAccess, the quiescent-cache friend facade over MolecularCache's
// sim-only mutators.  The service can never guarantee quiescence, so
// the rule bans the pairing outright (no hatch).
#include "core/molecular_cache.hpp"
#include "core/sim_access.hpp"

namespace molcache::mc {

void
breakATile(MolecularCache &cache)
{
    SimAccess{cache}.injectTileOutage(TileId{0}); // sim-access-in-service
}

} // namespace molcache::mc
