// Negative fixture: reads a config key that src/util/config_keys.cpp has
// never registered.  warnUnknownKeys() catches unknown keys in files;
// this rule catches the inverse -- code asking for a key no file can
// legally contain.
#include "util/config.hpp"

molcache::u64
readIt(const molcache::Config &cfg)
{
    // "molecule" is registered; "moleculesize" is a typo of it.
    return cfg.getSize("moleculesize", 8192); // config-key
}
