// Negative fixture: reads a config key that src/util/config_keys.cpp has
// never registered.  warnUnknownKeys() catches unknown keys in files;
// this rule catches the inverse -- code asking for a key no file can
// legally contain.
#include "util/config.hpp"

molcache::u64
readIt(const molcache::Config &cfg)
{
    // "molecule" is registered; "moleculesize" is a typo of it.
    return cfg.getSize("moleculesize", 8192); // config-key
}

bool
readPredictive(const molcache::Config &cfg)
{
    // "guardian.predictive.enabled" is registered; the singular
    // "guardian.predict.enabled" is a typo of it.
    return cfg.getBool("guardian.predict.enabled", false); // config-key
}

double
readHint(const molcache::Config &cfg)
{
    // "workload.hint.drop" is registered; "workload.hint.dropout" is
    // a typo of it.
    return cfg.getDouble("workload.hint.dropout", 0.0); // config-key
}

molcache::i64
readService(const molcache::Config &cfg)
{
    // "service.shards" is registered; the singular "service.shard" is
    // a typo of it.
    return cfg.getInt("service.shard", 2); // config-key
}
