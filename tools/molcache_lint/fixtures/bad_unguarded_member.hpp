// Positive fixture for `unguarded-member`: a class that declares an
// mc::Mutex but leaves mutable trailing-underscore members without a
// MOLCACHE_GUARDED_BY annotation and without the
// `// lint: unguarded(<why>)` escape tag.
#ifndef FIXTURE_BAD_UNGUARDED_MEMBER_HPP
#define FIXTURE_BAD_UNGUARDED_MEMBER_HPP

#include "util/sync.hpp"
#include "util/types.hpp"

namespace molcache {

class BadCounters
{
  public:
    void bump();

  private:
    mc::Mutex mutex_;
    u64 hits_ = 0;      // finding: which mutex guards this?
    double rate_ = 0.0; // finding: and this?
};

} // namespace molcache

#endif // FIXTURE_BAD_UNGUARDED_MEMBER_HPP
