// Positive fixture for `detached-thread`: a raw std::thread spun up
// outside the worker pool, then detached.  Detached threads outlive
// every scope unjoinably and break the deterministic shutdown story.
#include <thread>

namespace molcache {

void
fireAndForget()
{
    std::thread worker([] {}); // finding: raw std::thread outside the pool
    worker.detach();           // finding: .detach() is banned
}

} // namespace molcache
