// Negative fixture: the classic transposed (TileId, MoleculeId) argument
// pair.  Every signature in this repo orders molecule before tile, so
// the reversed adjacency is a bug even before overload resolution.
#include "core/region.hpp"

void
transposed(molcache::Region &region)
{
    region.addMolecule(molcache::TileId{0}, molcache::MoleculeId{3},
                       false); // transposed-ids (also won't compile)
}
