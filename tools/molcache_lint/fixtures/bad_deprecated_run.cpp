// Negative fixture: positional calls to the removed run overloads, and
// redeclarations that would reintroduce them.  New code passes
// RunOptions; the positional forms were deleted one release after the
// RunOptions API landed.
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"

namespace molcache {

// Reintroduced positional declarations (both flagged).
SimResult runWorkload(const std::vector<std::string> &profiles,
                      CacheModel &model, const GoalSet &goals,
                      u64 totalReferences, u64 seed); // deprecated-run
GoalSet deriveGoalsFromSolo(const std::vector<std::string> &profiles,
                            const SetAssocParams &reference,
                            double slackFactor, double minGoal,
                            u64 refsPerApp, u64 seed); // deprecated-run

} // namespace molcache

void
positionalCalls(molcache::AccessSource &src, molcache::CacheModel &cache)
{
    using namespace molcache;
    const GoalSet goals = GoalSet::uniform(0.1, 2);
    Simulator::run(src, cache, goals, {}, 1000);               // deprecated-run
    runWorkload({"ammp", "mcf"}, cache, GoalSet::uniform(0.1, 2)); // deprecated-run
    deriveGoalsFromSolo({"ammp"}, traditionalParams(1_MiB, 4), 1.5); // deprecated-run
}
