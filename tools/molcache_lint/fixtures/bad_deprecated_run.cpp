// Negative fixture: positional calls to the [[deprecated]] run
// overloads.  New code passes RunOptions; the positional forms exist
// only so downstream callers can migrate one release behind.
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"

void
positionalCalls(molcache::AccessSource &src, molcache::CacheModel &cache)
{
    using namespace molcache;
    const GoalSet goals = GoalSet::uniform(0.1, 2);
    Simulator::run(src, cache, goals, {}, 1000);               // deprecated-run
    runWorkload({"ammp", "mcf"}, cache, GoalSet::uniform(0.1, 2)); // deprecated-run
    deriveGoalsFromSolo({"ammp"}, traditionalParams(1_MiB, 4), 1.5); // deprecated-run
}
