// Negative fixture: naked libc randomness.  molcache_lint must flag both
// calls; all randomness belongs behind util/random.hpp so runs replay.
#include <cstdlib>

int
pickVictim(int ways)
{
    std::srand(42);          // naked-rand
    return rand() % ways;    // naked-rand
}
