// Negative fixture: raw integer ids in a (pretend) src/core public API.
// Every one of these parameters must use the strong id types.
#ifndef MOLCACHE_FIXTURE_BAD_CORE_API_HPP
#define MOLCACHE_FIXTURE_BAD_CORE_API_HPP

#include "util/types.hpp"

namespace molcache {

class BadCoreApi
{
  public:
    void assign(u32 moleculeId, u64 asid);  // raw-id-param x2
    void place(u32 tile, u32 row);          // raw-id-param x2
    void fine(Tick now, Addr addr, u64 seed, u32 numLines); // allowed
};

} // namespace molcache

#endif // MOLCACHE_FIXTURE_BAD_CORE_API_HPP
