// Positive fixture for `atomic-order`: bare std::atomic operations
// whose call sites do not spell out a std::memory_order.  Implicit
// seq_cst hides both the intended synchronization contract and its
// cost.
#include <atomic>

namespace molcache {

std::atomic<unsigned long> g_bad_count{0};

unsigned long
bumpWithoutOrders()
{
    g_bad_count.store(1);     // finding: store without an order
    g_bad_count.fetch_add(2); // finding: fetch_add without an order
    return g_bad_count.load(); // finding: load without an order
}

} // namespace molcache
