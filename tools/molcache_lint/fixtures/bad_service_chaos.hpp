// Negative fixture for the src/service scope of `hot-path-map` and
// `unguarded-member`: a (pretend) chaos-plane header that keeps its
// event table in a node-based map and its counters unguarded next to a
// shard mutex.  Both habits are exactly what the real service/chaos
// sources must not pick up.
#ifndef MOLCACHE_FIXTURE_BAD_SERVICE_CHAOS_HPP
#define MOLCACHE_FIXTURE_BAD_SERVICE_CHAOS_HPP

#include <map>

#include "util/sync.hpp"
#include "util/types.hpp"

namespace molcache {
namespace mc {

class BadChaosPlane
{
  public:
    void fire(u64 epoch);

  private:
    mc::Mutex mutex_;
    // hot-path-map: the epoch table is drained every control epoch;
    // keep it a sorted flat vector with a cursor instead.
    std::map<u64, u32> eventsByEpoch_;
    u64 eventsFired_ = 0; // unguarded-member: which mutex guards this?
};

} // namespace mc
} // namespace molcache

#endif // MOLCACHE_FIXTURE_BAD_SERVICE_CHAOS_HPP
