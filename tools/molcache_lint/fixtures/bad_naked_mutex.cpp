// Positive fixture for `naked-mutex`: raw standard-library
// synchronization primitives outside src/util/sync.hpp.  These are
// invisible to Clang Thread Safety Analysis; the annotated mc::Mutex /
// mc::MutexLock / mc::CondVar wrappers are the sanctioned vocabulary.
#include <condition_variable>
#include <mutex>

namespace molcache {

std::mutex g_bad_mutex;           // finding: raw std::mutex
std::condition_variable g_bad_cv; // finding: raw std::condition_variable

int
badCriticalSection(int x)
{
    std::lock_guard<std::mutex> lock(g_bad_mutex); // finding: lock_guard
    return x + 1;
}

} // namespace molcache
