/**
 * @file
 * molcache-lint: repo-specific static-analysis rules the generic tools
 * (clang-tidy, cppcheck) cannot express.  Purely textual, dependency-free
 * and fast: it strips comments and string literals, then applies one
 * regex-driven checker per rule.
 *
 * Every rule lives in kRules[] — one registry row carrying the rule
 * name, its checker, and the positive fixture that must trigger it.
 * The production scan and the --self-test walk the SAME table, so a
 * rule cannot be registered without a fixture (the self-test fails) and
 * a fixture cannot drift away from its rule (the expectation is the
 * registry row itself).
 *
 * Rules (docs/static_analysis.md has the rationale for each):
 *
 *  - naked-rand:        rand()/srand()/rand_r() outside src/util/random --
 *                       all randomness must flow through the seeded,
 *                       reproducible RandomSource hierarchy.
 *  - config-key:        every config-key literal passed to Config::get or
 *                       Config::has must be registered in
 *                       src/util/config_keys.cpp (the warnUnknownKeys
 *                       inverse: code cannot read a key the registry has
 *                       never heard of).
 *  - raw-id-param:      no raw-integer parameters with id-like names in
 *                       src/core public headers; ids must use the strong
 *                       types (MoleculeId, TileId, ClusterId, Asid,
 *                       RowIndex).
 *  - transposed-ids:    a textual (TileId{...}, MoleculeId{...}) argument
 *                       pair -- every API in this repo orders molecule
 *                       before tile, so the reversed adjacency is a
 *                       transposition even before the compiler sees it.
 *  - no-assert:         assert() in src/ -- use MOLCACHE_EXPECT/ENSURE/
 *                       INVARIANT so violations are counted and surfaced
 *                       through SimResult.
 *  - include-hygiene:   no "../" includes (project includes are
 *                       repo-root-relative), no duplicate includes, and
 *                       no <cassert>/<assert.h> in src/.
 *  - hot-path-map:      node-based container data members (std::map,
 *                       std::unordered_map, sets, std::list) in
 *                       src/core and src/service headers -- the access
 *                       hot path, including the batch plane's lane
 *                       structs and the service's shard/tenant tables,
 *                       must use dense/flat structures (docs/perf.md);
 *                       genuinely sparse state opts out with a
 *                       `molcache-lint: allow-map` comment on or just
 *                       above the declaration.
 *  - deprecated-run:    positional-argument calls to Simulator::run,
 *                       runWorkload or deriveGoalsFromSolo -- the
 *                       positional overloads were removed; new code must
 *                       pass RunOptions.
 *  - naked-mutex:       raw std::mutex/condition_variable/lock_guard/
 *                       unique_lock/scoped_lock in src/ outside
 *                       src/util/sync.hpp -- unannotated primitives are
 *                       invisible to Clang Thread Safety Analysis; use
 *                       mc::Mutex/mc::MutexLock/mc::CondVar.
 *  - unguarded-member:  a header class declaring an mc::Mutex whose
 *                       trailing-underscore data members carry neither a
 *                       MOLCACHE_GUARDED_BY annotation nor an explicit
 *                       `// lint: unguarded(<why>)` tag.
 *  - atomic-order:      bare std::atomic load/store/fetch/exchange calls
 *                       without an explicit std::memory_order argument in
 *                       src/ -- implicit seq_cst hides the intended
 *                       ordering contract (and its cost) from review.
 *  - detached-thread:   .detach() anywhere in src/, and raw std::thread
 *                       construction outside the worker pool
 *                       (src/exec/thread_pool.*) -- detached threads
 *                       outlive scope unjoinably and break the
 *                       deterministic shutdown story.  A long-lived
 *                       owned thread (the molcached control plane) opts
 *                       out of the raw-thread half only with
 *                       `// lint: allow(raw-thread): <why>` on or just
 *                       above the declaration; .detach() has no hatch.
 *  - lock-across-call:  holding an mc::MutexLock across a user-callback
 *                       invocation in src/exec/ -- callbacks can run for
 *                       seconds or re-enter the caller; opt out with
 *                       `// lint: allow(lock-across-call): <why>` when
 *                       serialization is the documented contract.
 *  - sim-access-in-service: SimAccess (the quiescent-cache friend
 *                       facade over MolecularCache's sim-only mutators)
 *                       used under src/service/ -- the service serves
 *                       concurrent callers, and SimAccess's contract is
 *                       a quiescent cache; there is no hatch.  Sole
 *                       exact-path exemption: src/service/chaos.cpp,
 *                       the chaos applier the control plane runs under
 *                       the target shard's lock.
 *
 * Usage:
 *   molcache_lint --root <repo-root>               lint the tree
 *   molcache_lint --root <repo-root> --sarif p.sarif  ... and write SARIF
 *   molcache_lint --root <repo-root> --self-test   run against the bundled
 *                                                  fixtures and verify the
 *                                                  expected findings
 *
 * Exit status: 0 when clean (or the self-test expectations match), 1
 * otherwise.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding
{
    std::string rule;
    std::string file; // repo-relative
    int line;
    std::string message;
};

std::vector<Finding> g_findings;

void
report(const std::string &rule, const std::string &file, int line,
       const std::string &message)
{
    g_findings.push_back({rule, file, line, message});
}

/**
 * Replace comments and the contents of string/char literals with spaces
 * (newlines preserved so line numbers survive).  Keeps the quotes of
 * string literals so "..." extraction rules can opt back in via the raw
 * text when they need it.
 */
std::string
stripCommentsAndStrings(const std::string &in, bool keepStrings)
{
    std::string out;
    out.reserve(in.size());
    enum { Code, Line, Block, Str, Chr } state = Code;
    for (size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        const char n = i + 1 < in.size() ? in[i + 1] : '\0';
        switch (state) {
        case Code:
            if (c == '/' && n == '/') {
                state = Line;
                out += "  ";
                ++i;
            } else if (c == '/' && n == '*') {
                state = Block;
                out += "  ";
                ++i;
            } else if (c == '"') {
                state = Str;
                out += '"';
            } else if (c == '\'') {
                state = Chr;
                out += '\'';
            } else {
                out += c;
            }
            break;
        case Line:
            if (c == '\n') {
                state = Code;
                out += '\n';
            } else {
                out += ' ';
            }
            break;
        case Block:
            if (c == '*' && n == '/') {
                state = Code;
                out += "  ";
                ++i;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        case Str:
            if (c == '\\' && n != '\0') {
                out += keepStrings ? in.substr(i, 2) : std::string("  ");
                ++i;
            } else if (c == '"') {
                state = Code;
                out += '"';
            } else if (c == '\n') {
                out += '\n'; // unterminated; keep line count sane
                state = Code;
            } else {
                out += keepStrings ? c : ' ';
            }
            break;
        case Chr:
            if (c == '\\' && n != '\0') {
                out += "  ";
                ++i;
            } else if (c == '\'') {
                state = Code;
                out += '\'';
            } else {
                out += ' ';
            }
            break;
        }
    }
    return out;
}

int
lineOf(const std::string &text, size_t pos)
{
    return 1 + static_cast<int>(
                   std::count(text.begin(), text.begin() +
                              static_cast<std::ptrdiff_t>(pos), '\n'));
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** One source file, pre-stripped both ways. */
struct SourceFile
{
    std::string rel;    // repo-relative path, '/' separators
    std::string raw;    // untouched text (allowlist comments live here)
    std::string code;   // comments + string contents blanked
    std::string codeStr; // comments blanked, string contents kept
};

/** Cross-rule inputs a checker may need (today: the config-key registry). */
struct Context
{
    std::vector<std::string> registryKeys;
};

/* ------------------------------------------------------------------ */
/* Config-key registry                                                 */

/**
 * Parse the {"key", "help"} pairs out of the knownConfigKeys()
 * initializer.  The registry file keeps every entry a plain string
 * literal exactly so this stays possible.
 */
std::vector<std::string>
parseRegistry(const fs::path &registryCpp)
{
    std::vector<std::string> keys;
    const std::string text =
        stripCommentsAndStrings(readFile(registryCpp), true);
    static const std::regex entry(R"rx(\{\s*"([^"]*)"\s*,\s*")rx");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), entry);
         it != std::sregex_iterator(); ++it)
        keys.push_back((*it)[1].str());
    return keys;
}

bool
registryCovers(const std::vector<std::string> &keys, const std::string &key)
{
    for (const std::string &known : keys) {
        if (!known.empty() && known.back() == '.') {
            if (key.compare(0, known.size(), known) == 0 || key == known)
                return true;
        } else if (key == known) {
            return true;
        }
    }
    return false;
}

/* ------------------------------------------------------------------ */
/* Shared helpers                                                      */

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

/**
 * True when any of raw lines [line-span, line] contains @p tag (the
 * escape-hatch comments live in the raw text; code is stripped).
 */
bool
hasTagNear(const std::string &raw, int line, int span,
           const std::string &tag)
{
    int current = 1;
    size_t start = 0;
    for (size_t i = 0; i <= raw.size(); ++i) {
        if (i == raw.size() || raw[i] == '\n') {
            if (current >= line - span && current <= line &&
                raw.substr(start, i - start).find(tag) != std::string::npos)
                return true;
            if (current > line)
                break;
            ++current;
            start = i + 1;
        }
    }
    return false;
}

/**
 * Split the balanced parenthesized argument list starting at @p open
 * (the '(' position) into top-level arguments.  Tracks (), {} and []
 * nesting; returns empty when the list never closes (macro soup).
 */
std::vector<std::string>
splitArgs(const std::string &code, size_t open)
{
    std::vector<std::string> args;
    std::string current;
    int depth = 0;
    for (size_t i = open; i < code.size(); ++i) {
        const char c = code[i];
        if (c == '(' || c == '{' || c == '[') {
            if (++depth > 1)
                current += c;
            continue;
        }
        if (c == ')' || c == '}' || c == ']') {
            if (--depth == 0) {
                if (!current.empty())
                    args.push_back(current);
                return args;
            }
            current += c;
            continue;
        }
        if (c == ',' && depth == 1) {
            args.push_back(current);
            current.clear();
            continue;
        }
        if (depth >= 1)
            current += c;
    }
    return {};
}

bool
looksNumeric(const std::string &arg)
{
    static const std::regex rx(R"(^\s*[0-9][0-9'.]*\s*$)");
    return std::regex_search(arg, rx);
}

/* ------------------------------------------------------------------ */
/* Rules                                                               */

void
checkNakedRand(const SourceFile &f, const Context &)
{
    if (startsWith(f.rel, "src/util/random"))
        return;
    static const std::regex rx(R"((^|[^\w:.>])(std\s*::\s*)?(rand|srand|rand_r)\s*\()");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it) {
        report("naked-rand", f.rel, lineOf(f.code, static_cast<size_t>(it->position(3))),
               "use util/random.hpp (seeded, reproducible) instead of " +
                   (*it)[3].str() + "()");
    }
}

void
checkConfigKeys(const SourceFile &f, const Context &ctx)
{
    // Tests construct synthetic configs with throwaway keys; the registry
    // governs production readers (src/, bench/, examples/) only.
    if (startsWith(f.rel, "tests/"))
        return;
    static const std::regex rx(
        R"rx(\b(?:cfg|config)\s*\.\s*(?:get(?:String|Int|Double|Bool|Size)|has)\s*\(\s*"([^"]+)")rx");
    for (auto it =
             std::sregex_iterator(f.codeStr.begin(), f.codeStr.end(), rx);
         it != std::sregex_iterator(); ++it) {
        const std::string key = (*it)[1].str();
        if (!registryCovers(ctx.registryKeys, key))
            report("config-key", f.rel,
                   lineOf(f.codeStr, static_cast<size_t>(it->position(1))),
                   "config key \"" + key +
                       "\" is not registered in src/util/config_keys.cpp");
    }
}

void
checkRawIdParams(const SourceFile &f, const Context &)
{
    if (!startsWith(f.rel, "src/core/") || f.rel.find(".hpp") == std::string::npos)
        return;
    // A raw integral parameter whose name says it is an identifier.
    static const std::regex rx(
        R"(\b(u8|u16|u32|u64|int|unsigned|size_t|uint16_t|uint32_t|uint64_t)\s+(\w+)\s*[,)=])");
    static const std::regex idName(
        R"(^(asid|tile|cluster|molecule|mol|row|id)$|(Id|Asid)$)");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[2].str();
        if (std::regex_search(name, idName))
            report("raw-id-param", f.rel,
                   lineOf(f.code, static_cast<size_t>(it->position(2))),
                   "parameter '" + name + "' is a raw " + (*it)[1].str() +
                       "; use the strong id type");
    }
}

void
checkHotPathMap(const SourceFile &f, const Context &)
{
    if ((!startsWith(f.rel, "src/core/") &&
         !startsWith(f.rel, "src/service/")) ||
        f.rel.find(".hpp") == std::string::npos)
        return;
    // A node-based container data member in a core or service header:
    // every class here sits on or near the access hot path, where node
    // containers cost a pointer chase per access (docs/perf.md) — the
    // service's shard/tenant tables ride the same path as the core's
    // probe structures.  Covers maps,
    // sets and lists, and members without the trailing underscore too,
    // so the batch data plane's plain-named lane/scratch structs
    // (MolecularCache::BatchLane and friends) are held to the same
    // dense-layout bar as classic members.  Genuinely sparse state
    // (e.g. the per-line coherence directory) opts out with the allow
    // tag.
    static const std::regex rx(
        R"(\bstd\s*::\s*((unordered_)?(map|set|multimap|multiset)|list)\s*<[^;{}()]*>\s+\w+\s*(\{\s*\})?\s*;)");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it) {
        const int line =
            lineOf(f.code, static_cast<size_t>(it->position(0)));
        if (hasTagNear(f.raw, line, 3, "molcache-lint: allow-map"))
            continue;
        report("hot-path-map", f.rel, line,
               "node-based map member in a hot-path class; use a "
               "dense/flat structure (docs/perf.md) or annotate the "
               "declaration with 'molcache-lint: allow-map'");
    }
}

void
checkTransposedIds(const SourceFile &f, const Context &)
{
    // Every signature in this repo orders molecule before tile;
    // the reversed adjacency is a transposed call.
    static const std::regex rx(
        R"(TileId\{[^{}]*\}\s*,\s*(\w+\s*::\s*)*MoleculeId\{)");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it)
        report("transposed-ids", f.rel,
               lineOf(f.code, static_cast<size_t>(it->position(0))),
               "(TileId, MoleculeId) argument pair is transposed; this "
               "repo orders molecule before tile");
}

void
checkNoAssert(const SourceFile &f, const Context &)
{
    if (!startsWith(f.rel, "src/") || startsWith(f.rel, "src/contract/"))
        return;
    static const std::regex rx(R"((^|[^\w.:])assert\s*\()");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it)
        report("no-assert", f.rel,
               lineOf(f.code, static_cast<size_t>(it->position(0)) + 1),
               "use MOLCACHE_EXPECT/ENSURE/INVARIANT instead of assert()");
}

void
checkDeprecatedRun(const SourceFile &f, const Context &)
{
    // The positional overloads were [[deprecated]] for one release and
    // then deleted; the rule now also covers src/sim/ so neither the
    // forwarders nor their declarations can quietly come back.
    //
    // Heuristic (the compiler is the authority wherever MOLCACHE_WERROR
    // is on): the RunOptions forms take at most (source-ish, model,
    // options) — a fourth positional argument, a positional GoalSet, or
    // a numeric third argument to deriveGoalsFromSolo can only be a
    // removed-overload call.  A *declaration* (reference parameters in
    // args[0]) is a reintroduction when it carries a positional GoalSet
    // parameter, or — for deriveGoalsFromSolo — no RunOptions parameter
    // at all.
    static const std::regex rx(
        R"((Simulator\s*::\s*run|\brunWorkload|\bderiveGoalsFromSolo)\s*\()");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it) {
        const std::string fn = (*it)[1].str();
        const size_t open =
            static_cast<size_t>(it->position(0)) + it->length(0) - 1;
        const std::vector<std::string> args = splitArgs(f.code, open);
        if (args.size() < 3)
            continue; // declarations trimmed below the arity of interest
        const bool declaration = args[0].find('&') != std::string::npos;
        bool deprecated = false;
        if (declaration) {
            bool positional_goals = false;
            bool has_run_options = false;
            for (size_t i = 2; i < args.size(); ++i) {
                if (args[i].find("RunOptions") != std::string::npos)
                    has_run_options = true;
                else if (args[i].find("GoalSet") != std::string::npos)
                    positional_goals = true;
            }
            deprecated = positional_goals ||
                         (fn == "deriveGoalsFromSolo" && !has_run_options);
        } else if (fn == "deriveGoalsFromSolo") {
            deprecated = looksNumeric(args[2]);
        } else {
            // A RunOptions chain may itself mention GoalSet
            // (.withGoals(GoalSet::uniform(...))) — only a GoalSet
            // passed *without* RunOptions in the argument is positional.
            for (size_t i = 2; i < args.size(); ++i)
                if (args[i].find("GoalSet") != std::string::npos &&
                    args[i].find("RunOptions") == std::string::npos)
                    deprecated = true;
            if (args.size() > 3)
                deprecated = true;
        }
        if (deprecated)
            report("deprecated-run", f.rel,
                   lineOf(f.code, static_cast<size_t>(it->position(0))),
                   "positional " + fn + "() " +
                       (declaration ? "declaration" : "call") +
                       "; the positional overloads were removed — pass "
                       "RunOptions");
    }
}

void
checkIncludeHygiene(const SourceFile &f, const Context &)
{
    static const std::regex rx(R"rx(#\s*include\s*([<"])([^">]+)[">])rx");
    std::set<std::string> seen;
    for (auto it =
             std::sregex_iterator(f.codeStr.begin(), f.codeStr.end(), rx);
         it != std::sregex_iterator(); ++it) {
        const std::string header = (*it)[2].str();
        const int line =
            lineOf(f.codeStr, static_cast<size_t>(it->position(0)));
        if (!seen.insert(header).second)
            report("include-hygiene", f.rel, line,
                   "duplicate include of \"" + header + "\"");
        if (startsWith(header, "../") ||
            header.find("/../") != std::string::npos)
            report("include-hygiene", f.rel, line,
                   "relative include \"" + header +
                       "\"; project includes are repo-root-relative");
        if (startsWith(f.rel, "src/") &&
            (header == "cassert" || header == "assert.h"))
            report("include-hygiene", f.rel, line,
                   "<" + header + "> in src/; contracts replace assert()");
    }
}

/* --------------------- concurrency rule family -------------------- */

void
checkNakedMutex(const SourceFile &f, const Context &)
{
    // The annotated wrappers are the only sanctioned vocabulary: a raw
    // primitive is invisible to Clang Thread Safety Analysis, so it
    // punches an unchecked hole in the lock discipline.  sync.hpp is
    // the one place allowed to touch the std types.
    if (!startsWith(f.rel, "src/") || f.rel == "src/util/sync.hpp")
        return;
    static const std::regex rx(
        R"(\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock)\b)");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it)
        report("naked-mutex", f.rel,
               lineOf(f.code, static_cast<size_t>(it->position(0))),
               "raw std::" + (*it)[1].str() +
                   " outside src/util/sync.hpp; use the annotated "
                   "mc::Mutex/mc::MutexLock/mc::CondVar wrappers");
}

void
checkUnguardedMember(const SourceFile &f, const Context &)
{
    // Heuristic, header-granular: a header that declares an mc::Mutex
    // member must say, for every trailing-underscore data member, which
    // mutex guards it (MOLCACHE_GUARDED_BY/MOLCACHE_PT_GUARDED_BY) or
    // why none does (`// lint: unguarded(<why>)` on or just above the
    // declaration).  std::atomic, const/static and the sync primitives
    // themselves are self-describing and exempt.
    if (!startsWith(f.rel, "src/") || f.rel == "src/util/sync.hpp" ||
        f.rel.find(".hpp") == std::string::npos)
        return;
    static const std::regex trigger(R"(\bmc\s*::\s*Mutex\s+\w+\s*;)");
    if (!std::regex_search(f.code, trigger))
        return;
    // One data-member declaration: type tokens, the member_ name, an
    // optional TSA annotation, an optional initializer, ';'.
    static const std::regex member(
        R"(\n\s*((?:[A-Za-z_][\w:]*\s*(?:<[^;{}]*>)?[\s*&]+)+)(\w+_)\s*((?:MOLCACHE_\w+\s*\([^()]*\)\s*)*)(=[^;{}]*|\{[^;{}]*\})?\s*;)");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), member);
         it != std::sregex_iterator(); ++it) {
        const std::string type = (*it)[1].str();
        const std::string annotations = (*it)[3].str();
        if (annotations.find("GUARDED_BY") != std::string::npos)
            continue;
        // `return member_;` and friends parse like a declaration whose
        // "type" is the keyword; they are statements, not members.
        static const std::regex stmtKeyword(
            R"(^\s*(return|delete|throw|new|else|case|goto|co_return|co_yield|co_await)\b)");
        if (std::regex_search(type, stmtKeyword))
            continue;
        if (type.find("Mutex") != std::string::npos ||
            type.find("CondVar") != std::string::npos ||
            type.find("atomic") != std::string::npos ||
            type.find("const ") != std::string::npos ||
            type.find("static ") != std::string::npos ||
            type.find("using ") != std::string::npos ||
            type.find("typedef ") != std::string::npos)
            continue;
        const int line =
            lineOf(f.code, static_cast<size_t>(it->position(2)));
        if (hasTagNear(f.raw, line, 2, "lint: unguarded("))
            continue;
        report("unguarded-member", f.rel, line,
               "member '" + (*it)[2].str() +
                   "' in a mutex-holding class has no "
                   "MOLCACHE_GUARDED_BY; annotate it or tag the "
                   "declaration '// lint: unguarded(<why>)'");
    }
}

void
checkAtomicOrder(const SourceFile &f, const Context &)
{
    // Implicit seq_cst is almost never the intended contract on the
    // simulator's control planes; spelling the order out documents the
    // required synchronization (and its cost) at every site.
    if (!startsWith(f.rel, "src/"))
        return;
    static const std::regex rx(
        R"(\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*(\())");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it) {
        const size_t open = static_cast<size_t>(it->position(2));
        bool ordered = false;
        for (const std::string &arg : splitArgs(f.code, open))
            if (arg.find("memory_order") != std::string::npos)
                ordered = true;
        if (!ordered)
            report("atomic-order", f.rel,
                   lineOf(f.code, static_cast<size_t>(it->position(1))),
                   "atomic ." + (*it)[1].str() +
                       "() without an explicit std::memory_order "
                       "argument; spell the ordering out");
    }
}

void
checkDetachedThread(const SourceFile &f, const Context &)
{
    // Detached threads outlive every scope unjoinably; raw threads
    // outside the pool dodge its shutdown/error discipline.  The only
    // sanctioned spawn point is the worker pool itself.
    if (!startsWith(f.rel, "src/"))
        return;
    static const std::regex detach(R"(\.\s*detach\s*\(\s*\))");
    for (auto it =
             std::sregex_iterator(f.code.begin(), f.code.end(), detach);
         it != std::sregex_iterator(); ++it)
        report("detached-thread", f.rel,
               lineOf(f.code, static_cast<size_t>(it->position(0))),
               ".detach() is banned; threads must stay joinable (pool "
               "ownership, deterministic shutdown)");
    if (startsWith(f.rel, "src/exec/thread_pool"))
        return;
    static const std::regex rawThread(R"(\bstd\s*::\s*j?thread\b)");
    for (auto it =
             std::sregex_iterator(f.code.begin(), f.code.end(), rawThread);
         it != std::sregex_iterator(); ++it) {
        const int line =
            lineOf(f.code, static_cast<size_t>(it->position(0)));
        // A long-lived thread the owner joins deterministically (the
        // molcached control plane) may opt out — the tag forces the
        // shutdown story to be written down where the thread lives.
        if (hasTagNear(f.raw, line, 2, "lint: allow(raw-thread)"))
            continue;
        report("detached-thread", f.rel, line,
               "raw std::thread outside src/exec/thread_pool.*; run work "
               "through WorkStealingPool or tag "
               "'// lint: allow(raw-thread): <why>'");
    }
}

void
checkSimAccessInService(const SourceFile &f, const Context &)
{
    // SimAccess's contract is a QUIESCENT cache (no concurrent access
    // anywhere); src/service/ exists to serve concurrent callers, so
    // the two must never meet.  Deliberately no hatch: a service-side
    // need for a sim-only mutator means the mutator needs a real,
    // locked service verb instead.  The single exact-path exemption is
    // the chaos applier, whose whole job is to drive the fault
    // injectors and which the control plane only ever calls under the
    // target shard's lock (quiescence for that shard) — the header it
    // exports must still stay SimAccess-free.
    if (!startsWith(f.rel, "src/service/"))
        return;
    if (f.rel == "src/service/chaos.cpp")
        return;
    static const std::regex simAccess(R"(\bSimAccess\b)");
    for (auto it =
             std::sregex_iterator(f.code.begin(), f.code.end(), simAccess);
         it != std::sregex_iterator(); ++it)
        report("sim-access-in-service", f.rel,
               lineOf(f.code, static_cast<size_t>(it->position(0))),
               "SimAccess inside src/service/: its contract is a "
               "quiescent cache, which a concurrent service can never "
               "guarantee; add a locked Service verb instead");
}

void
checkLockAcrossCall(const SourceFile &f, const Context &)
{
    // Exec code must not invoke a user callback (sweep bodies, progress
    // hooks, inspectors) while holding a lock: the callback can run for
    // seconds or call back into the locked object.  When serialization
    // IS the documented contract, opt out with
    // `// lint: allow(lock-across-call): <why>` on or just above the
    // invocation.
    if (!startsWith(f.rel, "src/exec/"))
        return;
    static const std::regex lockDecl(R"(\bMutexLock\s+\w+\s*\()");
    static const std::regex call(
        R"((\(\s*\*\s*\w+\s*\)\s*\()|(\b(body|progress|callback|inspect|hook|handler)\w*\s*\()|(\.\s*(progress|inspect|callback|hook|handler)\w*\s*\())");
    for (auto it =
             std::sregex_iterator(f.code.begin(), f.code.end(), lockDecl);
         it != std::sregex_iterator(); ++it) {
        // The lock is scope-shaped (MutexLock has no unlock()), so it is
        // held from the declaration to the end of the enclosing block.
        const size_t from = static_cast<size_t>(it->position(0));
        size_t end = f.code.size();
        int depth = 0;
        for (size_t i = from; i < f.code.size(); ++i) {
            if (f.code[i] == '{') {
                ++depth;
            } else if (f.code[i] == '}') {
                if (--depth < 0) {
                    end = i;
                    break;
                }
            }
        }
        const std::string span = f.code.substr(from, end - from);
        for (auto c = std::sregex_iterator(span.begin(), span.end(), call);
             c != std::sregex_iterator(); ++c) {
            const int line = lineOf(
                f.code, from + static_cast<size_t>(c->position(0)));
            if (hasTagNear(f.raw, line, 4, "lint: allow(lock-across-call)"))
                continue;
            report("lock-across-call", f.rel, line,
                   "callback invoked while an mc::MutexLock is held; "
                   "copy the state out and call after the scope closes, "
                   "or tag '// lint: allow(lock-across-call): <why>'");
        }
    }
}

/* ------------------------------------------------------------------ */
/* Rule registry                                                       */

/**
 * One row per rule: the registry drives BOTH the production scan and
 * the self-test, so there is exactly one list to extend and a new rule
 * without a positive fixture fails --self-test by construction.
 */
struct Rule
{
    const char *name;
    /** Fixture (tools/molcache_lint/fixtures/) that must trigger it. */
    const char *fixture;
    void (*check)(const SourceFile &, const Context &);
    /** Optional second positive fixture (path-scoped rules that police
     * more than one subtree prove each scope separately). */
    const char *fixture2 = nullptr;
};

const Rule kRules[] = {
    {"naked-rand", "bad_rand.cpp", checkNakedRand},
    {"config-key", "bad_config_key.cpp", checkConfigKeys},
    {"raw-id-param", "bad_core_api.hpp", checkRawIdParams},
    {"hot-path-map", "bad_core_map.hpp", checkHotPathMap,
     "bad_service_chaos.hpp"},
    {"transposed-ids", "bad_transposed.cpp", checkTransposedIds},
    {"no-assert", "bad_include.cpp", checkNoAssert},
    {"deprecated-run", "bad_deprecated_run.cpp", checkDeprecatedRun},
    {"include-hygiene", "bad_include.cpp", checkIncludeHygiene},
    {"naked-mutex", "bad_naked_mutex.cpp", checkNakedMutex},
    {"unguarded-member", "bad_unguarded_member.hpp", checkUnguardedMember,
     "bad_service_chaos.hpp"},
    {"atomic-order", "bad_atomic_order.cpp", checkAtomicOrder},
    {"detached-thread", "bad_detached_thread.cpp", checkDetachedThread},
    {"lock-across-call", "bad_exec_lock_across_call.cpp",
     checkLockAcrossCall},
    {"sim-access-in-service", "bad_service_sim_access.cpp",
     checkSimAccessInService},
};

void
runAllRules(const SourceFile &f, const Context &ctx)
{
    for (const Rule &rule : kRules)
        rule.check(f, ctx);
}

/* ------------------------------------------------------------------ */
/* SARIF                                                               */

void
sarifEscape(std::string &out, const std::string &s)
{
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

/**
 * Write the findings as a SARIF 2.1.0 document so the CI lint job can
 * upload them to GitHub code scanning and findings annotate the PR diff.
 */
bool
writeSarif(const fs::path &path, const std::vector<Finding> &findings)
{
    std::string doc;
    doc += "{\n"
           "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
           "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
           "  \"version\": \"2.1.0\",\n"
           "  \"runs\": [{\n"
           "    \"tool\": {\"driver\": {\n"
           "      \"name\": \"molcache_lint\",\n"
           "      \"informationUri\": "
           "\"docs/static_analysis.md\",\n"
           "      \"rules\": [";
    bool first = true;
    for (const Rule &rule : kRules) {
        if (!first)
            doc += ", ";
        first = false;
        doc += "{\"id\": \"";
        doc += rule.name;
        doc += "\"}";
    }
    doc += "]\n    }},\n    \"results\": [";
    first = true;
    for (const Finding &f : findings) {
        if (!first)
            doc += ",";
        first = false;
        doc += "\n      {\"ruleId\": \"";
        sarifEscape(doc, f.rule);
        doc += "\", \"level\": \"error\", \"message\": {\"text\": \"";
        sarifEscape(doc, f.message);
        doc += "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \"";
        sarifEscape(doc, f.file);
        doc += "\"}, \"region\": {\"startLine\": ";
        doc += std::to_string(f.line > 0 ? f.line : 1);
        doc += "}}}]}";
    }
    doc += "\n    ]\n  }]\n}\n";
    std::ofstream out(path);
    if (!out)
        return false;
    out << doc;
    return out.good();
}

/* ------------------------------------------------------------------ */
/* Driver                                                              */

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".hh";
}

std::vector<fs::path>
collect(const fs::path &root, const std::vector<std::string> &subdirs)
{
    std::vector<fs::path> files;
    for (const std::string &sub : subdirs) {
        const fs::path dir = root / sub;
        if (!fs::exists(dir))
            continue;
        for (const auto &e : fs::recursive_directory_iterator(dir))
            if (e.is_regular_file() && isSourceFile(e.path()))
                files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

SourceFile
loadFile(const fs::path &path, const std::string &rel)
{
    SourceFile f;
    f.rel = rel;
    f.raw = readFile(path);
    f.code = stripCommentsAndStrings(f.raw, false);
    f.codeStr = stripCommentsAndStrings(f.raw, true);
    return f;
}

int
runTree(const fs::path &root, const fs::path &sarifPath)
{
    Context ctx;
    ctx.registryKeys = parseRegistry(root / "src/util/config_keys.cpp");
    if (ctx.registryKeys.empty()) {
        std::fprintf(stderr,
                     "molcache_lint: failed to parse the config-key "
                     "registry at %s\n",
                     (root / "src/util/config_keys.cpp").c_str());
        return 1;
    }
    for (const fs::path &p :
         collect(root, {"src", "tests", "bench", "examples"}))
        runAllRules(loadFile(p, fs::relative(p, root).generic_string()),
                    ctx);
    for (const Finding &f : g_findings)
        std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                     f.rule.c_str(), f.message.c_str());
    if (!sarifPath.empty() && !writeSarif(sarifPath, g_findings)) {
        std::fprintf(stderr, "molcache_lint: cannot write SARIF to %s\n",
                     sarifPath.c_str());
        return 1;
    }
    if (g_findings.empty()) {
        std::printf("molcache_lint: clean\n");
        return 0;
    }
    std::fprintf(stderr, "molcache_lint: %zu finding(s)\n",
                 g_findings.size());
    return 1;
}

/**
 * Self-test: lint the bundled fixtures and verify the registry's
 * expectations — every registered rule (a) ships its positive fixture
 * and (b) fires on it, while no rule fires on any good_* fixture.
 * Registering a rule without a fixture is therefore a self-test
 * failure, not silent coverage drift.
 */
int
runSelfTest(const fs::path &root)
{
    const fs::path fixtures = root / "tools/molcache_lint/fixtures";
    Context ctx;
    ctx.registryKeys = parseRegistry(root / "src/util/config_keys.cpp");
    if (ctx.registryKeys.empty() || !fs::exists(fixtures)) {
        std::fprintf(stderr, "molcache_lint: self-test setup missing\n");
        return 1;
    }
    int failures = 0;
    for (const Rule &rule : kRules) {
        for (const char *fixture : {rule.fixture, rule.fixture2}) {
            if (fixture != nullptr && !fs::exists(fixtures / fixture)) {
                std::fprintf(stderr,
                             "self-test: rule '%s' has no fixture %s — "
                             "every registered rule ships one\n",
                             rule.name, fixture);
                ++failures;
            }
        }
    }
    std::vector<fs::path> files;
    for (const auto &e : fs::recursive_directory_iterator(fixtures))
        if (e.is_regular_file() && isSourceFile(e.path()))
            files.push_back(e.path());
    std::sort(files.begin(), files.end());
    for (const fs::path &p : files) {
        // Fixtures mimic tree files: *core* fixtures play src/core
        // headers, *exec* fixtures src/exec translation units,
        // *service* fixtures src/service files, everything else a
        // generic src/ file — so path-scoped rules see the paths they
        // police.
        const std::string name = p.filename().string();
        std::string rel = "src/fixture/" + name;
        if (name.find("core") != std::string::npos)
            rel = "src/core/" + name;
        else if (name.find("exec") != std::string::npos)
            rel = "src/exec/" + name;
        else if (name.find("service") != std::string::npos)
            rel = "src/service/" + name;
        runAllRules(loadFile(p, rel), ctx);
    }

    for (const Rule &rule : kRules) {
        for (const char *fixture : {rule.fixture, rule.fixture2}) {
            if (fixture == nullptr)
                continue;
            const bool hit = std::any_of(
                g_findings.begin(), g_findings.end(),
                [&](const Finding &f) {
                    return f.rule == rule.name &&
                           f.file.find(fixture) != std::string::npos;
                });
            if (!hit) {
                std::fprintf(stderr,
                             "self-test: rule '%s' did NOT fire on %s\n",
                             rule.name, fixture);
                ++failures;
            }
        }
    }
    for (const Finding &f : g_findings) {
        if (f.file.find("good_") != std::string::npos) {
            std::fprintf(stderr,
                         "self-test: clean fixture flagged: %s:%d [%s]\n",
                         f.file.c_str(), f.line, f.rule.c_str());
            ++failures;
        }
    }
    if (failures == 0) {
        std::printf("molcache_lint self-test: %zu finding(s) across %zu "
                    "rules, all expectations met\n",
                    g_findings.size(), std::size(kRules));
        return 0;
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    fs::path sarif;
    bool selfTest = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarif = argv[++i];
        } else if (arg == "--self-test") {
            selfTest = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: molcache_lint [--root DIR] "
                        "[--sarif PATH] [--self-test]\n");
            return 0;
        } else {
            std::fprintf(stderr, "molcache_lint: unknown option '%s'\n",
                         arg.c_str());
            return 1;
        }
    }
    return selfTest ? runSelfTest(root) : runTree(root, sarif);
}
