/**
 * @file
 * molcache-lint: repo-specific static-analysis rules the generic tools
 * (clang-tidy, cppcheck) cannot express.  Purely textual, dependency-free
 * and fast: it strips comments and string literals, then applies one
 * regex-driven checker per rule.
 *
 * Rules (docs/static_analysis.md has the rationale for each):
 *
 *  - naked-rand:        rand()/srand()/rand_r() outside src/util/random --
 *                       all randomness must flow through the seeded,
 *                       reproducible RandomSource hierarchy.
 *  - config-key:        every config-key literal passed to Config::get or
 *                       Config::has must be registered in
 *                       src/util/config_keys.cpp (the warnUnknownKeys
 *                       inverse: code cannot read a key the registry has
 *                       never heard of).
 *  - raw-id-param:      no raw-integer parameters with id-like names in
 *                       src/core public headers; ids must use the strong
 *                       types (MoleculeId, TileId, ClusterId, Asid,
 *                       RowIndex).
 *  - transposed-ids:    a textual (TileId{...}, MoleculeId{...}) argument
 *                       pair -- every API in this repo orders molecule
 *                       before tile, so the reversed adjacency is a
 *                       transposition even before the compiler sees it.
 *  - no-assert:         assert() in src/ -- use MOLCACHE_EXPECT/ENSURE/
 *                       INVARIANT so violations are counted and surfaced
 *                       through SimResult.
 *  - include-hygiene:   no "../" includes (project includes are
 *                       repo-root-relative), no duplicate includes, and
 *                       no <cassert>/<assert.h> in src/.
 *  - hot-path-map:      std::map / std::unordered_map data members in
 *                       src/core headers -- the access hot path must use
 *                       dense/flat structures (docs/perf.md); genuinely
 *                       sparse state opts out with a
 *                       `molcache-lint: allow-map` comment on or just
 *                       above the declaration.
 *  - deprecated-run:    positional-argument calls to Simulator::run,
 *                       runWorkload or deriveGoalsFromSolo -- the
 *                       [[deprecated]] forwarders exist only for staged
 *                       migration; new code must pass RunOptions.  The
 *                       compiler enforces this wherever MOLCACHE_WERROR
 *                       is on; the lint catches it in one pass without a
 *                       build.
 *
 * Usage:
 *   molcache_lint --root <repo-root>              lint the tree
 *   molcache_lint --root <repo-root> --self-test  run against the bundled
 *                                                 fixtures and verify the
 *                                                 expected findings
 *
 * Exit status: 0 when clean (or the self-test expectations match), 1
 * otherwise.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding
{
    std::string rule;
    std::string file; // repo-relative
    int line;
    std::string message;
};

std::vector<Finding> g_findings;

void
report(const std::string &rule, const std::string &file, int line,
       const std::string &message)
{
    g_findings.push_back({rule, file, line, message});
}

/**
 * Replace comments and the contents of string/char literals with spaces
 * (newlines preserved so line numbers survive).  Keeps the quotes of
 * string literals so "..." extraction rules can opt back in via the raw
 * text when they need it.
 */
std::string
stripCommentsAndStrings(const std::string &in, bool keepStrings)
{
    std::string out;
    out.reserve(in.size());
    enum { Code, Line, Block, Str, Chr } state = Code;
    for (size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        const char n = i + 1 < in.size() ? in[i + 1] : '\0';
        switch (state) {
        case Code:
            if (c == '/' && n == '/') {
                state = Line;
                out += "  ";
                ++i;
            } else if (c == '/' && n == '*') {
                state = Block;
                out += "  ";
                ++i;
            } else if (c == '"') {
                state = Str;
                out += '"';
            } else if (c == '\'') {
                state = Chr;
                out += '\'';
            } else {
                out += c;
            }
            break;
        case Line:
            if (c == '\n') {
                state = Code;
                out += '\n';
            } else {
                out += ' ';
            }
            break;
        case Block:
            if (c == '*' && n == '/') {
                state = Code;
                out += "  ";
                ++i;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        case Str:
            if (c == '\\' && n != '\0') {
                out += keepStrings ? in.substr(i, 2) : std::string("  ");
                ++i;
            } else if (c == '"') {
                state = Code;
                out += '"';
            } else if (c == '\n') {
                out += '\n'; // unterminated; keep line count sane
                state = Code;
            } else {
                out += keepStrings ? c : ' ';
            }
            break;
        case Chr:
            if (c == '\\' && n != '\0') {
                out += "  ";
                ++i;
            } else if (c == '\'') {
                state = Code;
                out += '\'';
            } else {
                out += ' ';
            }
            break;
        }
    }
    return out;
}

int
lineOf(const std::string &text, size_t pos)
{
    return 1 + static_cast<int>(
                   std::count(text.begin(), text.begin() +
                              static_cast<std::ptrdiff_t>(pos), '\n'));
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** One source file, pre-stripped both ways. */
struct SourceFile
{
    std::string rel;    // repo-relative path, '/' separators
    std::string raw;    // untouched text (allowlist comments live here)
    std::string code;   // comments + string contents blanked
    std::string codeStr; // comments blanked, string contents kept
};

/* ------------------------------------------------------------------ */
/* Config-key registry                                                 */

/**
 * Parse the {"key", "help"} pairs out of the knownConfigKeys()
 * initializer.  The registry file keeps every entry a plain string
 * literal exactly so this stays possible.
 */
std::vector<std::string>
parseRegistry(const fs::path &registryCpp)
{
    std::vector<std::string> keys;
    const std::string text =
        stripCommentsAndStrings(readFile(registryCpp), true);
    static const std::regex entry(R"rx(\{\s*"([^"]*)"\s*,\s*")rx");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), entry);
         it != std::sregex_iterator(); ++it)
        keys.push_back((*it)[1].str());
    return keys;
}

bool
registryCovers(const std::vector<std::string> &keys, const std::string &key)
{
    for (const std::string &known : keys) {
        if (!known.empty() && known.back() == '.') {
            if (key.compare(0, known.size(), known) == 0 || key == known)
                return true;
        } else if (key == known) {
            return true;
        }
    }
    return false;
}

/* ------------------------------------------------------------------ */
/* Rules                                                               */

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

void
checkNakedRand(const SourceFile &f)
{
    if (startsWith(f.rel, "src/util/random"))
        return;
    static const std::regex rx(R"((^|[^\w:.>])(std\s*::\s*)?(rand|srand|rand_r)\s*\()");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it) {
        report("naked-rand", f.rel, lineOf(f.code, static_cast<size_t>(it->position(3))),
               "use util/random.hpp (seeded, reproducible) instead of " +
                   (*it)[3].str() + "()");
    }
}

void
checkConfigKeys(const SourceFile &f, const std::vector<std::string> &keys)
{
    // Tests construct synthetic configs with throwaway keys; the registry
    // governs production readers (src/, bench/, examples/) only.
    if (startsWith(f.rel, "tests/"))
        return;
    static const std::regex rx(
        R"rx(\b(?:cfg|config)\s*\.\s*(?:get(?:String|Int|Double|Bool|Size)|has)\s*\(\s*"([^"]+)")rx");
    for (auto it =
             std::sregex_iterator(f.codeStr.begin(), f.codeStr.end(), rx);
         it != std::sregex_iterator(); ++it) {
        const std::string key = (*it)[1].str();
        if (!registryCovers(keys, key))
            report("config-key", f.rel,
                   lineOf(f.codeStr, static_cast<size_t>(it->position(1))),
                   "config key \"" + key +
                       "\" is not registered in src/util/config_keys.cpp");
    }
}

void
checkRawIdParams(const SourceFile &f)
{
    if (!startsWith(f.rel, "src/core/") || f.rel.find(".hpp") == std::string::npos)
        return;
    // A raw integral parameter whose name says it is an identifier.
    static const std::regex rx(
        R"(\b(u8|u16|u32|u64|int|unsigned|size_t|uint16_t|uint32_t|uint64_t)\s+(\w+)\s*[,)=])");
    static const std::regex idName(
        R"(^(asid|tile|cluster|molecule|mol|row|id)$|(Id|Asid)$)");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[2].str();
        if (std::regex_search(name, idName))
            report("raw-id-param", f.rel,
                   lineOf(f.code, static_cast<size_t>(it->position(2))),
                   "parameter '" + name + "' is a raw " + (*it)[1].str() +
                       "; use the strong id type");
    }
}

/** True when any of raw lines [line-3, line] carries the allow tag. */
bool
hasAllowMapTag(const std::string &raw, int line)
{
    int current = 1;
    size_t start = 0;
    for (size_t i = 0; i <= raw.size(); ++i) {
        if (i == raw.size() || raw[i] == '\n') {
            if (current >= line - 3 && current <= line &&
                raw.substr(start, i - start)
                        .find("molcache-lint: allow-map") !=
                    std::string::npos)
                return true;
            if (current > line)
                break;
            ++current;
            start = i + 1;
        }
    }
    return false;
}

void
checkHotPathMap(const SourceFile &f)
{
    if (!startsWith(f.rel, "src/core/") ||
        f.rel.find(".hpp") == std::string::npos)
        return;
    // A node-based map data member (trailing-underscore naming) in a
    // core header: every class here sits on or near the access hot
    // path, where node maps cost a pointer chase per access
    // (docs/perf.md).  Genuinely sparse state (e.g. the per-line
    // coherence directory) opts out with the allow tag.
    static const std::regex rx(
        R"(\bstd\s*::\s*(unordered_)?map\s*<[^;{}()]*>\s+\w+_\s*(\{\s*\})?\s*;)");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it) {
        const int line =
            lineOf(f.code, static_cast<size_t>(it->position(0)));
        if (hasAllowMapTag(f.raw, line))
            continue;
        report("hot-path-map", f.rel, line,
               "node-based map member in a hot-path class; use a "
               "dense/flat structure (docs/perf.md) or annotate the "
               "declaration with 'molcache-lint: allow-map'");
    }
}

void
checkTransposedIds(const SourceFile &f)
{
    // Every signature in this repo orders molecule before tile;
    // the reversed adjacency is a transposed call.
    static const std::regex rx(
        R"(TileId\{[^{}]*\}\s*,\s*(\w+\s*::\s*)*MoleculeId\{)");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it)
        report("transposed-ids", f.rel,
               lineOf(f.code, static_cast<size_t>(it->position(0))),
               "(TileId, MoleculeId) argument pair is transposed; this "
               "repo orders molecule before tile");
}

void
checkNoAssert(const SourceFile &f)
{
    if (!startsWith(f.rel, "src/") || startsWith(f.rel, "src/contract/"))
        return;
    static const std::regex rx(R"((^|[^\w.:])assert\s*\()");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it)
        report("no-assert", f.rel,
               lineOf(f.code, static_cast<size_t>(it->position(0)) + 1),
               "use MOLCACHE_EXPECT/ENSURE/INVARIANT instead of assert()");
}

/**
 * Split the balanced parenthesized argument list starting at @p open
 * (the '(' position) into top-level arguments.  Tracks (), {} and []
 * nesting; returns empty when the list never closes (macro soup).
 */
std::vector<std::string>
splitArgs(const std::string &code, size_t open)
{
    std::vector<std::string> args;
    std::string current;
    int depth = 0;
    for (size_t i = open; i < code.size(); ++i) {
        const char c = code[i];
        if (c == '(' || c == '{' || c == '[') {
            if (++depth > 1)
                current += c;
            continue;
        }
        if (c == ')' || c == '}' || c == ']') {
            if (--depth == 0) {
                if (!current.empty())
                    args.push_back(current);
                return args;
            }
            current += c;
            continue;
        }
        if (c == ',' && depth == 1) {
            args.push_back(current);
            current.clear();
            continue;
        }
        if (depth >= 1)
            current += c;
    }
    return {};
}

bool
looksNumeric(const std::string &arg)
{
    static const std::regex rx(R"(^\s*[0-9][0-9'.]*\s*$)");
    return std::regex_search(arg, rx);
}

void
checkDeprecatedRun(const SourceFile &f)
{
    // The positional overloads were [[deprecated]] for one release and
    // then deleted; the rule now also covers src/sim/ so neither the
    // forwarders nor their declarations can quietly come back.
    //
    // Heuristic (the compiler is the authority wherever MOLCACHE_WERROR
    // is on): the RunOptions forms take at most (source-ish, model,
    // options) — a fourth positional argument, a positional GoalSet, or
    // a numeric third argument to deriveGoalsFromSolo can only be a
    // removed-overload call.  A *declaration* (reference parameters in
    // args[0]) is a reintroduction when it carries a positional GoalSet
    // parameter, or — for deriveGoalsFromSolo — no RunOptions parameter
    // at all.
    static const std::regex rx(
        R"((Simulator\s*::\s*run|\brunWorkload|\bderiveGoalsFromSolo)\s*\()");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), rx);
         it != std::sregex_iterator(); ++it) {
        const std::string fn = (*it)[1].str();
        const size_t open =
            static_cast<size_t>(it->position(0)) + it->length(0) - 1;
        const std::vector<std::string> args = splitArgs(f.code, open);
        if (args.size() < 3)
            continue; // declarations trimmed below the arity of interest
        const bool declaration = args[0].find('&') != std::string::npos;
        bool deprecated = false;
        if (declaration) {
            bool positional_goals = false;
            bool has_run_options = false;
            for (size_t i = 2; i < args.size(); ++i) {
                if (args[i].find("RunOptions") != std::string::npos)
                    has_run_options = true;
                else if (args[i].find("GoalSet") != std::string::npos)
                    positional_goals = true;
            }
            deprecated = positional_goals ||
                         (fn == "deriveGoalsFromSolo" && !has_run_options);
        } else if (fn == "deriveGoalsFromSolo") {
            deprecated = looksNumeric(args[2]);
        } else {
            // A RunOptions chain may itself mention GoalSet
            // (.withGoals(GoalSet::uniform(...))) — only a GoalSet
            // passed *without* RunOptions in the argument is positional.
            for (size_t i = 2; i < args.size(); ++i)
                if (args[i].find("GoalSet") != std::string::npos &&
                    args[i].find("RunOptions") == std::string::npos)
                    deprecated = true;
            if (args.size() > 3)
                deprecated = true;
        }
        if (deprecated)
            report("deprecated-run", f.rel,
                   lineOf(f.code, static_cast<size_t>(it->position(0))),
                   "positional " + fn + "() " +
                       (declaration ? "declaration" : "call") +
                       "; the positional overloads were removed — pass "
                       "RunOptions");
    }
}

void
checkIncludeHygiene(const SourceFile &f)
{
    static const std::regex rx(R"rx(#\s*include\s*([<"])([^">]+)[">])rx");
    std::set<std::string> seen;
    for (auto it =
             std::sregex_iterator(f.codeStr.begin(), f.codeStr.end(), rx);
         it != std::sregex_iterator(); ++it) {
        const std::string header = (*it)[2].str();
        const int line =
            lineOf(f.codeStr, static_cast<size_t>(it->position(0)));
        if (!seen.insert(header).second)
            report("include-hygiene", f.rel, line,
                   "duplicate include of \"" + header + "\"");
        if (startsWith(header, "../") ||
            header.find("/../") != std::string::npos)
            report("include-hygiene", f.rel, line,
                   "relative include \"" + header +
                       "\"; project includes are repo-root-relative");
        if (startsWith(f.rel, "src/") &&
            (header == "cassert" || header == "assert.h"))
            report("include-hygiene", f.rel, line,
                   "<" + header + "> in src/; contracts replace assert()");
    }
}

/* ------------------------------------------------------------------ */
/* Driver                                                              */

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".hh";
}

std::vector<fs::path>
collect(const fs::path &root, const std::vector<std::string> &subdirs)
{
    std::vector<fs::path> files;
    for (const std::string &sub : subdirs) {
        const fs::path dir = root / sub;
        if (!fs::exists(dir))
            continue;
        for (const auto &e : fs::recursive_directory_iterator(dir))
            if (e.is_regular_file() && isSourceFile(e.path()))
                files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

void
lintFile(const fs::path &root, const fs::path &path,
         const std::vector<std::string> &registry)
{
    SourceFile f;
    f.rel = fs::relative(path, root).generic_string();
    f.raw = readFile(path);
    f.code = stripCommentsAndStrings(f.raw, false);
    f.codeStr = stripCommentsAndStrings(f.raw, true);
    checkNakedRand(f);
    checkConfigKeys(f, registry);
    checkRawIdParams(f);
    checkHotPathMap(f);
    checkTransposedIds(f);
    checkNoAssert(f);
    checkDeprecatedRun(f);
    checkIncludeHygiene(f);
}

int
runTree(const fs::path &root)
{
    const std::vector<std::string> registry =
        parseRegistry(root / "src/util/config_keys.cpp");
    if (registry.empty()) {
        std::fprintf(stderr,
                     "molcache_lint: failed to parse the config-key "
                     "registry at %s\n",
                     (root / "src/util/config_keys.cpp").c_str());
        return 1;
    }
    for (const fs::path &p :
         collect(root, {"src", "tests", "bench", "examples"}))
        lintFile(root, p, registry);
    for (const Finding &f : g_findings)
        std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                     f.rule.c_str(), f.message.c_str());
    if (g_findings.empty()) {
        std::printf("molcache_lint: clean\n");
        return 0;
    }
    std::fprintf(stderr, "molcache_lint: %zu finding(s)\n",
                 g_findings.size());
    return 1;
}

/**
 * Self-test: lint the bundled fixtures and compare against the expected
 * rule/file pairs.  The negative fixtures (transposed ids, unregistered
 * config key, naked rand, ...) MUST each produce their finding; the clean
 * fixture must produce none.
 */
int
runSelfTest(const fs::path &root)
{
    const fs::path fixtures = root / "tools/molcache_lint/fixtures";
    const std::vector<std::string> registry =
        parseRegistry(root / "src/util/config_keys.cpp");
    if (registry.empty() || !fs::exists(fixtures)) {
        std::fprintf(stderr, "molcache_lint: self-test setup missing\n");
        return 1;
    }
    std::vector<fs::path> files;
    for (const auto &e : fs::recursive_directory_iterator(fixtures))
        if (e.is_regular_file() && isSourceFile(e.path()))
            files.push_back(e.path());
    std::sort(files.begin(), files.end());
    for (const fs::path &p : files) {
        // Fixtures mimic tree files: bad_core_*.hpp fixtures play
        // src/core headers, everything else a src/ translation unit.
        SourceFile f;
        const std::string name = p.filename().string();
        f.rel = (name.find("core") != std::string::npos
                     ? "src/core/" + name
                     : "src/fixture/" + name);
        f.raw = readFile(p);
        f.code = stripCommentsAndStrings(f.raw, false);
        f.codeStr = stripCommentsAndStrings(f.raw, true);
        checkNakedRand(f);
        checkConfigKeys(f, registry);
        checkRawIdParams(f);
        checkHotPathMap(f);
        checkTransposedIds(f);
        checkNoAssert(f);
        checkDeprecatedRun(f);
        checkIncludeHygiene(f);
    }

    // rule -> fixture file expected to trigger it.
    const std::vector<std::pair<std::string, std::string>> expected = {
        {"naked-rand", "bad_rand.cpp"},
        {"config-key", "bad_config_key.cpp"},
        {"raw-id-param", "bad_core_api.hpp"},
        {"hot-path-map", "bad_core_map.hpp"},
        {"transposed-ids", "bad_transposed.cpp"},
        {"no-assert", "bad_include.cpp"},
        {"deprecated-run", "bad_deprecated_run.cpp"},
        {"include-hygiene", "bad_include.cpp"},
    };
    int failures = 0;
    for (const auto &[rule, file] : expected) {
        const bool hit = std::any_of(
            g_findings.begin(), g_findings.end(), [&](const Finding &f) {
                return f.rule == rule &&
                       f.file.find(file) != std::string::npos;
            });
        if (!hit) {
            std::fprintf(stderr,
                         "self-test: rule '%s' did NOT fire on %s\n",
                         rule.c_str(), file.c_str());
            ++failures;
        }
    }
    for (const Finding &f : g_findings) {
        if (f.file.find("good_clean") != std::string::npos) {
            std::fprintf(stderr,
                         "self-test: clean fixture flagged: %s:%d [%s]\n",
                         f.file.c_str(), f.line, f.rule.c_str());
            ++failures;
        }
    }
    if (failures == 0) {
        std::printf("molcache_lint self-test: %zu finding(s), all "
                    "expectations met\n",
                    g_findings.size());
        return 0;
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    bool selfTest = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--self-test") {
            selfTest = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: molcache_lint [--root DIR] [--self-test]\n");
            return 0;
        } else {
            std::fprintf(stderr, "molcache_lint: unknown option '%s'\n",
                         arg.c_str());
            return 1;
        }
    }
    return selfTest ? runSelfTest(root) : runTree(root);
}
