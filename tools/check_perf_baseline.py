#!/usr/bin/env python3
"""Hard gate for the access-path micro-kernels (docs/perf.md).

Compares a freshly captured google-benchmark JSON document against the
committed baseline (BENCH_hotpath.json) and FAILS when any gated kernel
regresses.  Two design points keep the gate trustworthy on shared CI
runners:

1. Build-type refusal.  perf_kernels stamps "molcache_build_type" into
   the JSON context (its own main(); the stock "library_build_type" key
   only describes how the google-benchmark *library* was built).  Both
   the baseline and the candidate must say "release" -- a debug capture
   is not a performance measurement and is rejected outright.

2. Machine-speed normalization.  Absolute ns/op on a shared runner is
   noise; the ratio of a molecular kernel to the traditional
   set-associative yardstick (BM_HotpathTraditional/8, same process,
   same trace) is stable.  The gate compares normalized throughput:

       norm(name) = items_per_second(name) / items_per_second(yardstick)

   and fails when norm_candidate < --min-ratio * norm_baseline for any
   gated kernel (BM_HotpathMolecular/* and BM_HotpathBatch/*).

Usage:
    check_perf_baseline.py BASELINE.json CANDIDATE.json [--min-ratio R]
"""

import argparse
import json
import sys

YARDSTICK = "BM_HotpathTraditional/8"
GATED_PREFIXES = ("BM_HotpathMolecular/", "BM_HotpathBatch/")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"error: cannot read {path}: {err}")


def build_type(doc, path):
    ctx = doc.get("context", {})
    bt = ctx.get("molcache_build_type")
    if bt is None:
        sys.exit(
            f"error: {path} has no molcache_build_type in its context; "
            "recapture with the current perf_kernels binary "
            "(its main() stamps the build type; see docs/perf.md)")
    return bt


def throughputs(doc, path):
    out = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name")
        ips = bench.get("items_per_second")
        if name and ips:
            out[name] = float(ips)
    if YARDSTICK not in out:
        sys.exit(f"error: {path} is missing the {YARDSTICK} yardstick")
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--min-ratio", type=float, default=0.80,
        help="fail when normalized throughput drops below this fraction "
             "of the baseline (default: %(default)s)")
    args = parser.parse_args()

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    for path, doc in ((args.baseline, base_doc), (args.candidate, cand_doc)):
        bt = build_type(doc, path)
        if bt != "release":
            sys.exit(
                f"error: {path} was captured from a '{bt}' build; the "
                "perf gate only accepts release captures")

    base = throughputs(base_doc, args.baseline)
    cand = throughputs(cand_doc, args.candidate)

    failures = []
    rows = []
    for name in sorted(base):
        if not name.startswith(GATED_PREFIXES):
            continue
        if name not in cand:
            failures.append(f"{name}: present in baseline, missing from "
                            "candidate")
            continue
        norm_base = base[name] / base[YARDSTICK]
        norm_cand = cand[name] / cand[YARDSTICK]
        ratio = norm_cand / norm_base
        rows.append((name, norm_base, norm_cand, ratio))
        if ratio < args.min_ratio:
            failures.append(
                f"{name}: normalized throughput {ratio:.2f}x of baseline "
                f"(floor {args.min_ratio:.2f}x)")

    if not rows and not failures:
        sys.exit("error: no gated kernels found in the baseline")

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'kernel':<{width}}  base(norm)  cand(norm)  ratio")
    for name, nb, nc, ratio in rows:
        flag = "" if ratio >= args.min_ratio else "  << REGRESSION"
        print(f"{name:<{width}}  {nb:10.4f}  {nc:10.4f}  {ratio:5.2f}x{flag}")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"\nPASS: all gated kernels within {args.min_ratio:.2f}x floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
